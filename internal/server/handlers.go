package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"rexptree"
	"rexptree/internal/obs"
)

// reply is a handler outcome awaiting encoding.
type reply struct {
	status int
	body   any
}

func okReply(v any) reply { return reply{http.StatusOK, v} }

// errReply classifies an error: malformed requests are 400, index
// errors 500.
func errReply(err error) reply {
	var br badRequest
	if errors.As(err, &br) {
		return reply{http.StatusBadRequest, errorResponse{br.Error()}}
	}
	return reply{http.StatusInternalServerError, errorResponse{err.Error()}}
}

func (r reply) write(w http.ResponseWriter) {
	if er, ok := r.body.(errorResponse); ok {
		writeJSON(w, r.status, er)
		return
	}
	writeJSON(w, r.status, r.body)
}

// deadline resolves the request's deadline: the configured
// RequestTimeout, tightened by an explicit ?timeout= parameter
// (a Go duration).  Zero means no deadline.
func (s *Server) deadline(r *http.Request) (time.Duration, error) {
	d := s.cfg.RequestTimeout
	if p := r.URL.Query().Get("timeout"); p != "" {
		pd, err := time.ParseDuration(p)
		if err != nil || pd <= 0 {
			return 0, badRequestf("invalid timeout %q", p)
		}
		if d == 0 || pd < d {
			d = pd
		}
	}
	return d, nil
}

// run executes fn under the request deadline.  On timeout the request
// is answered 504 while fn runs to completion in the background —
// whatever it was doing is then simply never acknowledged (and, for a
// mutation, still holds its in-flight slot, so a drain waits for it).
func (s *Server) run(w http.ResponseWriter, r *http.Request, fn func() reply) {
	d, err := s.deadline(r)
	if err != nil {
		errReply(err).write(w)
		return
	}
	if d <= 0 {
		fn().write(w)
		return
	}
	done := make(chan reply, 1)
	go func() { done <- fn() }()
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case res := <-done:
		res.write(w)
	case <-timer.C:
		// Answer 504 and return.  Do NOT touch r.Body here: its mutex
		// is held by the stalled read, so Close would deadlock.  When
		// this handler returns, net/http aborts the pending read
		// (finishRequest -> abortPendingRead), which errors fn's next
		// Read so it finishes and releases its admission slot (and,
		// for a mutation, its drain token).  Connection: close keeps
		// the half-consumed body from poisoning a keep-alive reuse.
		w.Header().Set("Connection", "close")
		writeError(w, http.StatusGatewayTimeout, "deadline %v exceeded", d)
	case <-r.Context().Done():
		// Client gone; the pending read aborts when we return, fn
		// finishes in the background and its reply is dropped.
	}
}

// --- Mutations ---------------------------------------------------------

// updateResponse acknowledges a single routed mutation.
type updateResponse struct {
	OK      bool    `json:"ok"`
	Removed bool    `json:"removed,omitempty"` // deletes: report existed
	Clock   float64 `json:"clock"`             // server logical clock after the op
}

// handleUpdate applies one report: POST /v1/update, body a Record.
func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admitMutation(w, r)
	if !ok {
		return
	}
	s.run(w, r, func() reply {
		defer release()
		var rec Record
		if err := decodeBody(r.Body, &rec); err != nil {
			return errReply(err)
		}
		if rec.Op != "" && rec.Op != "update" {
			return errReply(badRequestf("op %q not valid on /v1/update (use /v1/delete or /v1/batch)", rec.Op))
		}
		p, err := rec.point(s.ix.Dims())
		if err != nil {
			return errReply(badRequest{err.Error()})
		}
		s.clock.Observe(rec.Time)
		now := s.clock.Now()
		if err := s.ix.Update(rec.ID, p, now); err != nil {
			return errReply(err)
		}
		return okReply(updateResponse{OK: true, Clock: now})
	})
}

// handleDelete removes one report: POST /v1/delete, body {"id": N}.
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admitMutation(w, r)
	if !ok {
		return
	}
	s.run(w, r, func() reply {
		defer release()
		var rec Record
		if err := decodeBody(r.Body, &rec); err != nil {
			return errReply(err)
		}
		if rec.Op != "" && rec.Op != "delete" {
			return errReply(badRequestf("op %q not valid on /v1/delete", rec.Op))
		}
		s.clock.Observe(rec.Time)
		now := s.clock.Now()
		removed, err := s.ix.Delete(rec.ID, now)
		if err != nil {
			return errReply(err)
		}
		return okReply(updateResponse{OK: true, Removed: removed, Clock: now})
	})
}

// batchResponse acknowledges a streamed ingest batch.
type batchResponse struct {
	Applied int     `json:"applied"` // update records applied
	Deleted int     `json:"deleted"` // delete records applied
	Batches int     `json:"batches"` // UpdateBatch calls issued
	Clock   float64 `json:"clock"`
}

// handleBatch streams an NDJSON body — one Record per line, updates
// and deletes — into the index, chunked into UpdateBatch calls of at
// most MaxBatch reports (a delete flushes the pending chunk first, so
// the stream applies in order).  Everything before a malformed line
// stays applied; the 400 names the offending line.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admitMutation(w, r)
	if !ok {
		return
	}
	slot, ok := s.acquireBatchSlot(w)
	if !ok {
		release()
		return
	}
	s.run(w, r, func() reply {
		defer release()
		defer slot()
		resp, err := s.ingest(r.Body)
		if err != nil {
			return errReply(err)
		}
		return okReply(resp)
	})
}

// ingest is the body of handleBatch.
func (s *Server) ingest(body io.Reader) (batchResponse, error) {
	var resp batchResponse
	pending := make([]rexptree.Report, 0, s.cfg.MaxBatch)
	var pendingMax float64

	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		s.clock.Observe(pendingMax)
		now := s.clock.Now()
		if err := s.ix.UpdateBatch(pending, now); err != nil {
			return err
		}
		resp.Applied += len(pending)
		resp.Batches++
		resp.Clock = now
		pending = pending[:0]
		return nil
	}

	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(raw, &rec); err != nil {
			return resp, badRequestf("line %d: %v", line, err)
		}
		switch rec.Op {
		case "", "update":
			p, err := rec.point(s.ix.Dims())
			if err != nil {
				return resp, badRequestf("line %d: %v", line, err)
			}
			if rec.Time > pendingMax {
				pendingMax = rec.Time
			}
			pending = append(pending, rexptree.Report{ID: rec.ID, Point: p})
			if len(pending) >= s.cfg.MaxBatch {
				if err := flush(); err != nil {
					return resp, err
				}
			}
		case "delete":
			if err := flush(); err != nil {
				return resp, err
			}
			s.clock.Observe(rec.Time)
			now := s.clock.Now()
			if _, err := s.ix.Delete(rec.ID, now); err != nil {
				return resp, err
			}
			resp.Deleted++
			resp.Clock = now
		default:
			return resp, badRequestf("line %d: unknown op %q", line, rec.Op)
		}
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return resp, badRequestf("line %d: exceeds the 1 MiB line limit", line+1)
		}
		return resp, err
	}
	if err := flush(); err != nil {
		return resp, err
	}
	if resp.Clock == 0 {
		resp.Clock = s.clock.Now()
	}
	return resp, nil
}

// decodeBody decodes a single-JSON-value request body strictly.
func decodeBody(body io.Reader, v any) error {
	dec := json.NewDecoder(io.LimitReader(body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequestf("malformed body: %v", err)
	}
	if dec.More() {
		return badRequestf("malformed body: trailing data after the JSON value")
	}
	return nil
}

// --- Queries -----------------------------------------------------------

// queryNow resolves the query's evaluation time: an explicit ?now=
// (absolute or "+N"), else the server clock.
func (s *Server) queryNow(q map[string][]string) (float64, error) {
	clock := s.clock.Now()
	vals := q["now"]
	if len(vals) == 0 || vals[0] == "" {
		return clock, nil
	}
	now, err := parseTime(vals[0], clock)
	if err != nil {
		return 0, badRequestf("now: %v", err)
	}
	return now, nil
}

// explain reports whether ?explain=1 (or =true) was passed.
func explain(q map[string][]string) bool {
	if vals := q["explain"]; len(vals) > 0 {
		on, _ := strconv.ParseBool(vals[0])
		return on
	}
	return false
}

// respond packages query results (and the trace under explain).
func (s *Server) respond(rs []rexptree.Result, tc *rexptree.QueryTrace, now float64) reply {
	return okReply(queryResponse{
		Now:     now,
		Count:   len(rs),
		Results: toResultJSON(rs, s.ix.Dims()),
		Trace:   tc,
	})
}

// handleTimeslice answers GET /v1/timeslice?lo=..&hi=..&at=..
func (s *Server) handleTimeslice(w http.ResponseWriter, r *http.Request) {
	s.run(w, r, func() reply {
		q := r.URL.Query()
		now, err := s.queryNow(q)
		if err != nil {
			return errReply(err)
		}
		dims := s.ix.Dims()
		lo, err := parseVec(q.Get("lo"), dims)
		if err != nil {
			return errReply(badRequestf("lo: %v", err))
		}
		hi, err := parseVec(q.Get("hi"), dims)
		if err != nil {
			return errReply(badRequestf("hi: %v", err))
		}
		at, err := parseTime(q.Get("at"), now)
		if err != nil {
			return errReply(badRequestf("at: %v", err))
		}
		rect := rexptree.Rect{Lo: lo, Hi: hi}
		if explain(q) {
			rs, tc, err := s.ix.TraceTimeslice(rect, at, now)
			if err != nil {
				return errReply(badRequest{err.Error()})
			}
			return s.respond(rs, tc, now)
		}
		rs, err := s.ix.Timeslice(rect, at, now)
		if err != nil {
			return errReply(badRequest{err.Error()})
		}
		return s.respond(rs, nil, now)
	})
}

// handleWindow answers GET /v1/window?lo=..&hi=..&t1=..&t2=..
func (s *Server) handleWindow(w http.ResponseWriter, r *http.Request) {
	s.run(w, r, func() reply {
		q := r.URL.Query()
		now, err := s.queryNow(q)
		if err != nil {
			return errReply(err)
		}
		dims := s.ix.Dims()
		lo, err := parseVec(q.Get("lo"), dims)
		if err != nil {
			return errReply(badRequestf("lo: %v", err))
		}
		hi, err := parseVec(q.Get("hi"), dims)
		if err != nil {
			return errReply(badRequestf("hi: %v", err))
		}
		t1, err := parseTime(q.Get("t1"), now)
		if err != nil {
			return errReply(badRequestf("t1: %v", err))
		}
		t2, err := parseTime(q.Get("t2"), now)
		if err != nil {
			return errReply(badRequestf("t2: %v", err))
		}
		rect := rexptree.Rect{Lo: lo, Hi: hi}
		if explain(q) {
			rs, tc, err := s.ix.TraceWindow(rect, t1, t2, now)
			if err != nil {
				return errReply(badRequest{err.Error()})
			}
			return s.respond(rs, tc, now)
		}
		rs, err := s.ix.Window(rect, t1, t2, now)
		if err != nil {
			return errReply(badRequest{err.Error()})
		}
		return s.respond(rs, nil, now)
	})
}

// handleMoving answers GET /v1/moving?lo1=..&hi1=..&lo2=..&hi2=..&t1=..&t2=..
func (s *Server) handleMoving(w http.ResponseWriter, r *http.Request) {
	s.run(w, r, func() reply {
		q := r.URL.Query()
		now, err := s.queryNow(q)
		if err != nil {
			return errReply(err)
		}
		dims := s.ix.Dims()
		var rects [2]rexptree.Rect
		for i, names := range [][2]string{{"lo1", "hi1"}, {"lo2", "hi2"}} {
			lo, err := parseVec(q.Get(names[0]), dims)
			if err != nil {
				return errReply(badRequestf("%s: %v", names[0], err))
			}
			hi, err := parseVec(q.Get(names[1]), dims)
			if err != nil {
				return errReply(badRequestf("%s: %v", names[1], err))
			}
			rects[i] = rexptree.Rect{Lo: lo, Hi: hi}
		}
		t1, err := parseTime(q.Get("t1"), now)
		if err != nil {
			return errReply(badRequestf("t1: %v", err))
		}
		t2, err := parseTime(q.Get("t2"), now)
		if err != nil {
			return errReply(badRequestf("t2: %v", err))
		}
		if explain(q) {
			rs, tc, err := s.ix.TraceMoving(rects[0], rects[1], t1, t2, now)
			if err != nil {
				return errReply(badRequest{err.Error()})
			}
			return s.respond(rs, tc, now)
		}
		rs, err := s.ix.Moving(rects[0], rects[1], t1, t2, now)
		if err != nil {
			return errReply(badRequest{err.Error()})
		}
		return s.respond(rs, nil, now)
	})
}

// handleNearest answers GET /v1/nearest?pos=..&k=..&at=..
func (s *Server) handleNearest(w http.ResponseWriter, r *http.Request) {
	s.run(w, r, func() reply {
		q := r.URL.Query()
		now, err := s.queryNow(q)
		if err != nil {
			return errReply(err)
		}
		pos, err := parseVec(q.Get("pos"), s.ix.Dims())
		if err != nil {
			return errReply(badRequestf("pos: %v", err))
		}
		k, err := strconv.Atoi(q.Get("k"))
		if err != nil || k <= 0 {
			return errReply(badRequestf("k: %q is not a positive integer", q.Get("k")))
		}
		at := now
		if q.Get("at") != "" {
			if at, err = parseTime(q.Get("at"), now); err != nil {
				return errReply(badRequestf("at: %v", err))
			}
		}
		if explain(q) {
			rs, tc, err := s.ix.TraceNearest(pos, at, k, now)
			if err != nil {
				return errReply(badRequest{err.Error()})
			}
			return s.respond(rs, tc, now)
		}
		rs, err := s.ix.Nearest(pos, at, k, now)
		if err != nil {
			return errReply(badRequest{err.Error()})
		}
		return s.respond(rs, nil, now)
	})
}

// handleObject answers GET /v1/object?id=N — the object's current
// report, or 404.
func (s *Server) handleObject(w http.ResponseWriter, r *http.Request) {
	s.run(w, r, func() reply {
		q := r.URL.Query()
		id, err := strconv.ParseUint(q.Get("id"), 10, 32)
		if err != nil {
			return errReply(badRequestf("id: %q is not an object id", q.Get("id")))
		}
		now, err := s.queryNow(q)
		if err != nil {
			return errReply(err)
		}
		p, ok := s.ix.Get(uint32(id), now)
		if !ok {
			return reply{http.StatusNotFound, errorResponse{fmt.Sprintf("object %d: no live report", id)}}
		}
		rows := toResultJSON([]rexptree.Result{{ID: uint32(id), Point: p}}, s.ix.Dims())
		return okReply(rows[0])
	})
}

// statsResponse describes the served index.
type statsResponse struct {
	Clock      float64   `json:"clock"`
	Objects    int       `json:"objects"`
	Shards     int       `json:"shards"`
	Generation int       `json:"generation"`
	Partition  string    `json:"partition"`
	SpeedBands []float64 `json:"speed_bands,omitempty"`
	Durability string    `json:"durability"`
	Draining   bool      `json:"draining"`
	Height     int       `json:"height"`
	Pages      int       `json:"pages"`
}

// handleStats answers GET /v1/stats.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.ix.Stats()
	writeJSON(w, http.StatusOK, statsResponse{
		Clock:      s.clock.Now(),
		Objects:    s.ix.Len(),
		Shards:     s.ix.NumShards(),
		Generation: s.ix.Generation(),
		Partition:  s.ix.Partition().String(),
		SpeedBands: s.ix.SpeedBands(),
		Durability: s.durabilityName(),
		Draining:   s.draining.Load(),
		Height:     st.Height,
		Pages:      st.Pages,
	})
}

// durability is configured on the daemon, not readable off the tree;
// rexpd records it on the server for /v1/stats.
func (s *Server) durabilityName() string { return s.durability }

// SetDurability records the daemon's durability policy for /v1/stats.
func (s *Server) SetDurability(name string) { s.durability = name }

// handleHealthz answers GET /healthz: the process is up.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz answers GET /readyz: ready to serve; flips to 503 the
// moment a drain begins (so load balancers stop routing here), and on
// a follower it also flips to 503 {"status":"stale"} when replication
// lag exceeds the configured threshold — a replica too far behind
// should stop receiving reads.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	if s.cfg.LagSeconds != nil && s.cfg.MaxLag > 0 {
		if lag := s.cfg.LagSeconds(); lag > s.cfg.MaxLag.Seconds() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{
				"status": "stale", "lag_seconds": lag, "max_lag_seconds": s.cfg.MaxLag.Seconds(),
			})
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// handleMetrics serves the Prometheus exposition (aggregate + per-shard
// sections, plus the Go runtime families unless disabled, plus the
// replication families when a hub or applier is wired in).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	h := s.ix.MetricsHandler()
	if s.cfg.RuntimeMetrics {
		h = obs.WithRuntimeMetrics(h, obs.DefaultPrefix)
	}
	if rs := s.cfg.ReplStats; rs != nil {
		inner := h
		h = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			inner.ServeHTTP(w, r)
			obs.WriteReplMetrics(w, obs.DefaultPrefix, rs())
		})
	}
	h.ServeHTTP(w, r)
}

// handleTraces serves the flight recorder's retained traces.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	s.ix.TraceHandler().ServeHTTP(w, r)
}

// --- Replication -------------------------------------------------------

// handleBackup streams a consistent hot-backup snapshot: GET
// /v1/backup.  The stream is produced by the replication hub directly
// (no request deadline — a backup legitimately runs long); without a
// hub the route answers 503 so a misconfigured follower fails loudly.
func (s *Server) handleBackup(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Backup == nil {
		writeError(w, http.StatusServiceUnavailable, "replication not enabled on this server (start rexpd with -repl-retain > 0)")
		return
	}
	s.cfg.Backup.ServeHTTP(w, r)
}

// handleWAL serves the logical record tail: GET /v1/wal?from=&epoch=.
// Long-polls, so it bypasses the request deadline machinery.
func (s *Server) handleWAL(w http.ResponseWriter, r *http.Request) {
	if s.cfg.WALFeed == nil {
		writeError(w, http.StatusServiceUnavailable, "replication not enabled on this server (start rexpd with -repl-retain > 0)")
		return
	}
	s.cfg.WALFeed.ServeHTTP(w, r)
}

// --- Live reshard ------------------------------------------------------

// reshardRequest describes the target layout of POST /v1/reshard.
type reshardRequest struct {
	Shards     int       `json:"shards,omitempty"`      // 0 keeps the current count
	Policy     string    `json:"policy"`                // "hash" or "speed"
	SpeedBands []float64 `json:"speed_bands,omitempty"` // empty under "speed": re-derived from observed speeds
}

// reshardStatusResponse mirrors rexptree.ReshardStatus on the wire.
type reshardStatusResponse struct {
	InFlight    bool   `json:"in_flight"`
	Phase       string `json:"phase"`
	Generation  int    `json:"generation"`
	Shards      int    `json:"shards"`
	Policy      string `json:"policy"`
	Scanned     uint64 `json:"scanned"`
	Backfilled  uint64 `json:"backfilled"`
	DualApplied uint64 `json:"dual_applied"`
	LastError   string `json:"last_error,omitempty"`
}

func toReshardStatusJSON(st rexptree.ReshardStatus) reshardStatusResponse {
	return reshardStatusResponse{
		InFlight:    st.InFlight,
		Phase:       st.Phase,
		Generation:  st.Generation,
		Shards:      st.Shards,
		Policy:      st.Policy,
		Scanned:     st.Scanned,
		Backfilled:  st.Backfilled,
		DualApplied: st.DualApplied,
		LastError:   st.LastError,
	}
}

// handleReshard starts a live reshard: POST /v1/reshard, body a
// reshardRequest.  The call returns as soon as the background engine is
// started (202) — progress is observable on /v1/reshard/status; a
// reshard already in flight is refused with 409.
func (s *Server) handleReshard(w http.ResponseWriter, r *http.Request) {
	if s.cfg.ReadOnly {
		writeError(w, http.StatusForbidden, "read-only follower: resharding must be done on the leader")
		return
	}
	s.run(w, r, func() reply {
		var req reshardRequest
		if err := decodeBody(r.Body, &req); err != nil {
			return errReply(err)
		}
		policy, err := rexptree.ParsePartitionPolicy(req.Policy)
		if err != nil {
			return errReply(badRequestf("policy: %v", err))
		}
		spec := rexptree.ReshardSpec{
			Shards:     req.Shards,
			Policy:     policy,
			SpeedBands: req.SpeedBands,
		}
		if err := s.ix.StartReshard(spec); err != nil {
			if errors.Is(err, rexptree.ErrReshardInFlight) {
				return reply{http.StatusConflict, errorResponse{err.Error()}}
			}
			return errReply(badRequestf("%v", err))
		}
		return reply{http.StatusAccepted, toReshardStatusJSON(s.ix.ReshardStatus())}
	})
}

// handleReshardStatus answers GET /v1/reshard/status: progress of the
// in-flight reshard, or the terminal state of the last one.
func (s *Server) handleReshardStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, toReshardStatusJSON(s.ix.ReshardStatus()))
}

// handleReshardCancel answers POST /v1/reshard/cancel: asks the
// in-flight reshard to abort cleanly.  Canceled reports whether there
// was one to cancel; cancellation completes asynchronously.
func (s *Server) handleReshardCancel(w http.ResponseWriter, r *http.Request) {
	if s.cfg.ReadOnly {
		writeError(w, http.StatusForbidden, "read-only follower: resharding must be done on the leader")
		return
	}
	canceled := s.ix.CancelReshard()
	writeJSON(w, http.StatusOK, map[string]bool{"canceled": canceled})
}
