package server

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"

	"rexptree"
)

// The wire formats of the rexpd HTTP API.  Every request and response
// body is JSON; the ingest stream (/v1/batch) is newline-delimited
// JSON, one record per line.  docs/API.md is the reference and is kept
// in sync with the registered routes by a doc-coverage test.

// Record is one ingest line: an update (the default) or, with
// Op == "delete", a deletion.  Times are the index's logical clock;
// Expires == 0 means the report never expires.
type Record struct {
	Op      string    `json:"op,omitempty"` // "", "update" or "delete"
	ID      uint32    `json:"id"`
	Pos     []float64 `json:"pos,omitempty"`
	Vel     []float64 `json:"vel,omitempty"`
	Time    float64   `json:"time"`
	Expires float64   `json:"expires,omitempty"`
}

// point converts a record to the public report type, validating the
// coordinate arity against the index dimensionality.
func (r Record) point(dims int) (rexptree.Point, error) {
	if len(r.Pos) != dims {
		return rexptree.Point{}, fmt.Errorf("pos has %d coordinates, index has %d dimensions", len(r.Pos), dims)
	}
	if len(r.Vel) != 0 && len(r.Vel) != dims {
		return rexptree.Point{}, fmt.Errorf("vel has %d coordinates, index has %d dimensions", len(r.Vel), dims)
	}
	p := rexptree.Point{Time: r.Time, Expires: r.Expires}
	for i, c := range r.Pos {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return rexptree.Point{}, fmt.Errorf("pos[%d] is not finite", i)
		}
		p.Pos[i] = c
	}
	for i, c := range r.Vel {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return rexptree.Point{}, fmt.Errorf("vel[%d] is not finite", i)
		}
		p.Vel[i] = c
	}
	if p.Expires == 0 {
		p.Expires = rexptree.NoExpiry()
	}
	return p, nil
}

// resultJSON is one query result row.
type resultJSON struct {
	ID      uint32    `json:"id"`
	Pos     []float64 `json:"pos"`
	Vel     []float64 `json:"vel"`
	Time    float64   `json:"time"`
	Expires float64   `json:"expires,omitempty"`
}

func toResultJSON(rs []rexptree.Result, dims int) []resultJSON {
	out := make([]resultJSON, len(rs))
	for i, r := range rs {
		row := resultJSON{ID: r.ID, Time: r.Point.Time,
			Pos: make([]float64, dims), Vel: make([]float64, dims)}
		for d := 0; d < dims; d++ {
			row.Pos[d] = r.Point.Pos[d]
			row.Vel[d] = r.Point.Vel[d]
		}
		if !math.IsInf(r.Point.Expires, 1) {
			row.Expires = r.Point.Expires
		}
		out[i] = row
	}
	return out
}

// queryResponse is the body of every query endpoint.
type queryResponse struct {
	Now     float64              `json:"now"`             // evaluation time used
	Count   int                  `json:"count"`           // len(results)
	Results []resultJSON         `json:"results"`         // ascending id (nearest: distance)
	Trace   *rexptree.QueryTrace `json:"trace,omitempty"` // with ?explain=1
}

// errorResponse is the body of every non-2xx response.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// badRequest reports a malformed request (400).
type badRequest struct{ msg string }

func (e badRequest) Error() string { return e.msg }

func badRequestf(format string, args ...any) error {
	return badRequest{fmt.Sprintf(format, args...)}
}

// parseVec parses a comma-separated coordinate list ("400,620") with
// exactly dims components.
func parseVec(s string, dims int) (rexptree.Vec, error) {
	var v rexptree.Vec
	if s == "" {
		return v, fmt.Errorf("missing coordinates")
	}
	parts := strings.Split(s, ",")
	if len(parts) != dims {
		return v, fmt.Errorf("%q has %d coordinates, index has %d dimensions", s, len(parts), dims)
	}
	for i, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || math.IsNaN(f) || math.IsInf(f, 0) {
			return v, fmt.Errorf("coordinate %q is not a finite number", p)
		}
		v[i] = f
	}
	return v, nil
}

// parseTime parses a query time parameter.  A leading "+" makes the
// value relative to the server clock ("t2=+10" means now+10), which is
// what curl invocations against a live logical clock want.
func parseTime(s string, now float64) (float64, error) {
	if s == "" {
		return 0, fmt.Errorf("missing time")
	}
	rel := strings.HasPrefix(s, "+")
	f, err := strconv.ParseFloat(strings.TrimPrefix(s, "+"), 64)
	if err != nil || math.IsNaN(f) || math.IsInf(f, 0) {
		return 0, fmt.Errorf("time %q is not a finite number", s)
	}
	if rel {
		return now + f, nil
	}
	return f, nil
}
