package storage

import (
	"bytes"
	"errors"
	"math/rand"
	"path/filepath"
	"testing"
)

// storeSuite exercises any Store implementation.
func storeSuite(t *testing.T, s Store) {
	t.Helper()
	if s.Len() != 0 {
		t.Fatalf("fresh store Len = %d", s.Len())
	}
	a, err := s.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("duplicate page ids")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}

	buf := make([]byte, PageSize)
	if err := s.ReadPage(a, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, make([]byte, PageSize)) {
		t.Fatal("fresh page not zeroed")
	}

	for i := range buf {
		buf[i] = byte(i)
	}
	if err := s.WritePage(a, buf); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, PageSize)
	if err := s.ReadPage(a, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, buf) {
		t.Fatal("read-your-writes violated")
	}
	// Page b untouched.
	if err := s.ReadPage(b, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, PageSize)) {
		t.Fatal("write leaked into neighbor page")
	}

	// Free and reuse.
	if err := s.Free(a); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("Len after free = %d", s.Len())
	}
	if err := s.ReadPage(a, got); !errors.Is(err, ErrPageFreed) {
		t.Fatalf("read freed page: err = %v", err)
	}
	if err := s.WritePage(a, buf); !errors.Is(err, ErrPageFreed) {
		t.Fatalf("write freed page: err = %v", err)
	}
	if err := s.Free(a); !errors.Is(err, ErrPageFreed) {
		t.Fatalf("double free: err = %v", err)
	}
	c, err := s.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if c != a {
		t.Fatalf("free list not reused: got %d, want %d", c, a)
	}
	if err := s.ReadPage(c, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, PageSize)) {
		t.Fatal("recycled page not zeroed")
	}

	if err := s.ReadPage(PageID(9999), got); !errors.Is(err, ErrPageRange) {
		t.Fatalf("out-of-range read: err = %v", err)
	}
}

func TestMemStore(t *testing.T) { storeSuite(t, NewMemStore()) }

func TestFileStore(t *testing.T) {
	s, err := CreateFileStore(filepath.Join(t.TempDir(), "pages.db"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	storeSuite(t, s)
}

func TestFileStoreReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	s, err := CreateFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	var ids []PageID
	for i := 0; i < 5; i++ {
		id, err := s.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, PageSize)
		buf[0] = byte(100 + i)
		if err := s.WritePage(id, buf); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := s.Free(ids[2]); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 4 {
		t.Fatalf("reopened Len = %d, want 4", r.Len())
	}
	buf := make([]byte, PageSize)
	for i, id := range ids {
		if i == 2 {
			if err := r.ReadPage(id, buf); !errors.Is(err, ErrPageFreed) {
				t.Fatalf("freed page readable after reopen: %v", err)
			}
			continue
		}
		if err := r.ReadPage(id, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte(100+i) {
			t.Fatalf("page %d content lost: %d", id, buf[0])
		}
	}
	// Freed page is recycled first.
	id, err := r.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if id != ids[2] {
		t.Fatalf("recycled id = %d, want %d", id, ids[2])
	}
}

func TestOpenFileStoreRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.db")
	s, err := CreateFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Corrupt the magic.
	f, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := OpenFileStore(filepath.Join(t.TempDir(), "missing.db")); err == nil {
		t.Fatal("opened a missing file")
	}
}

func TestStoreRandomizedAllocFree(t *testing.T) {
	s := NewMemStore()
	rng := rand.New(rand.NewSource(9))
	alive := map[PageID][]byte{}
	for step := 0; step < 2000; step++ {
		if len(alive) == 0 || rng.Intn(3) > 0 {
			id, err := s.Allocate()
			if err != nil {
				t.Fatal(err)
			}
			if _, dup := alive[id]; dup {
				t.Fatalf("allocator handed out live page %d", id)
			}
			buf := make([]byte, PageSize)
			rng.Read(buf)
			if err := s.WritePage(id, buf); err != nil {
				t.Fatal(err)
			}
			alive[id] = buf
		} else {
			for id, want := range alive {
				got := make([]byte, PageSize)
				if err := s.ReadPage(id, got); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("page %d corrupted", id)
				}
				if err := s.Free(id); err != nil {
					t.Fatal(err)
				}
				delete(alive, id)
				break
			}
		}
		if s.Len() != len(alive) {
			t.Fatalf("Len = %d, want %d", s.Len(), len(alive))
		}
	}
}
