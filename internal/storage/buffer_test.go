package storage

import (
	"bytes"
	"math/rand"
	"testing"

	"rexptree/internal/obs"
)

func TestBufferPoolReadYourWrites(t *testing.T) {
	bp := NewBufferPool(NewMemStore(), 4)
	id, data, err := bp.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	data[0] = 42
	if err := bp.MarkDirty(id); err != nil {
		t.Fatal(err)
	}
	got, err := bp.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 42 {
		t.Fatal("buffered write not visible")
	}
	if bp.Stats().Reads != 0 {
		t.Errorf("reads = %d, want 0 (allocation and hit only)", bp.Stats().Reads)
	}
}

func TestBufferPoolEvictionWritesBackDirty(t *testing.T) {
	store := NewMemStore()
	bp := NewBufferPool(store, 2)
	a, dataA, _ := bp.Allocate()
	dataA[0] = 1
	bp.MarkDirty(a)
	b, dataB, _ := bp.Allocate()
	dataB[0] = 2
	bp.MarkDirty(b)
	// Third allocation evicts the LRU page (a).
	c, _, _ := bp.Allocate()
	_ = c
	if bp.Resident() != 2 {
		t.Fatalf("resident = %d", bp.Resident())
	}
	if bp.Stats().Writes != 1 {
		t.Fatalf("writes = %d, want 1 (evicted dirty page)", bp.Stats().Writes)
	}
	// Re-reading a must come from the store with the written content.
	got, err := bp.Get(a)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 {
		t.Fatal("dirty page lost on eviction")
	}
	if bp.Stats().Reads != 1 {
		t.Errorf("reads = %d, want 1 (miss on a)", bp.Stats().Reads)
	}
}

func TestBufferPoolLRUOrder(t *testing.T) {
	store := NewMemStore()
	// Pre-create pages directly in the store.
	var ids []PageID
	for i := 0; i < 4; i++ {
		id, _ := store.Allocate()
		ids = append(ids, id)
	}
	bp := NewBufferPool(store, 2)
	bp.Get(ids[0])
	bp.Get(ids[1])
	bp.Get(ids[0]) // 0 is now MRU; 1 is LRU
	bp.Get(ids[2]) // evicts 1
	if _, ok := bp.frames[ids[1]]; ok {
		t.Fatal("LRU page 1 not evicted")
	}
	if _, ok := bp.frames[ids[0]]; !ok {
		t.Fatal("MRU page 0 was evicted")
	}
}

func TestBufferPoolPinnedNeverEvicted(t *testing.T) {
	store := NewMemStore()
	var ids []PageID
	for i := 0; i < 5; i++ {
		id, _ := store.Allocate()
		ids = append(ids, id)
	}
	bp := NewBufferPool(store, 2)
	if err := bp.Pin(ids[0]); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids[1:] {
		if _, err := bp.Get(id); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := bp.frames[ids[0]]; !ok {
		t.Fatal("pinned page was evicted")
	}
	// A pool where everything is pinned must error, not spin.
	bp2 := NewBufferPool(store, 1)
	bp2.Pin(ids[0])
	if _, err := bp2.Get(ids[1]); err == nil {
		t.Fatal("expected error when all frames pinned")
	}
	// Unpin allows progress again.
	bp2.Unpin(ids[0])
	if _, err := bp2.Get(ids[1]); err != nil {
		t.Fatal(err)
	}
}

func TestBufferPoolPinNesting(t *testing.T) {
	store := NewMemStore()
	id, _ := store.Allocate()
	bp := NewBufferPool(store, 1)
	bp.Pin(id)
	bp.Pin(id)
	if err := bp.Unpin(id); err != nil {
		t.Fatal(err)
	}
	// Still pinned once: a second page cannot enter a cap-1 pool.
	id2, _ := store.Allocate()
	if _, err := bp.Get(id2); err == nil {
		t.Fatal("nested pin ignored")
	}
	if err := bp.Unpin(id); err != nil {
		t.Fatal(err)
	}
	if err := bp.Unpin(id); err == nil {
		t.Fatal("unbalanced unpin accepted")
	}
}

func TestBufferPoolFlush(t *testing.T) {
	store := NewMemStore()
	bp := NewBufferPool(store, 4)
	id, data, _ := bp.Allocate()
	data[7] = 9
	bp.MarkDirty(id)
	if err := bp.Flush(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	if err := store.ReadPage(id, buf); err != nil {
		t.Fatal(err)
	}
	if buf[7] != 9 {
		t.Fatal("flush did not reach the store")
	}
	w := bp.Stats().Writes
	// Flushing again writes nothing: pages are clean.
	if err := bp.Flush(); err != nil {
		t.Fatal(err)
	}
	if bp.Stats().Writes != w {
		t.Fatal("clean pages rewritten on second flush")
	}
}

func TestBufferPoolFreeDropsFrame(t *testing.T) {
	store := NewMemStore()
	bp := NewBufferPool(store, 4)
	id, data, _ := bp.Allocate()
	data[0] = 5
	bp.MarkDirty(id)
	if err := bp.Free(id); err != nil {
		t.Fatal(err)
	}
	if bp.Resident() != 0 {
		t.Fatal("freed page still resident")
	}
	if store.Len() != 0 {
		t.Fatal("freed page still allocated in store")
	}
	if bp.Stats().Writes != 0 {
		t.Fatal("freed dirty page was written back")
	}
	// Freeing a pinned page must fail.
	id2, _, _ := bp.Allocate()
	bp.Pin(id2)
	if err := bp.Free(id2); err == nil {
		t.Fatal("freed a pinned page")
	}
}

func TestBufferPoolStatsSub(t *testing.T) {
	a := Stats{Reads: 10, Writes: 4, Hits: 100, Evictions: 8, DirtyWritebacks: 5}
	b := Stats{Reads: 3, Writes: 1, Hits: 40, Evictions: 2, DirtyWritebacks: 1}
	d := a.Sub(b)
	if d.Reads != 7 || d.Writes != 3 || d.Hits != 60 || d.Evictions != 6 || d.DirtyWritebacks != 4 {
		t.Errorf("Sub = %+v", d)
	}
	if a.IO() != 14 {
		t.Errorf("IO = %d", a.IO())
	}
}

// TestBufferPoolEvictionCounters distinguishes evictions from dirty
// writebacks: evicting a clean frame counts only an eviction, a dirty
// frame additionally counts a writeback.
func TestBufferPoolEvictionCounters(t *testing.T) {
	store := NewMemStore()
	var ids []PageID
	for i := 0; i < 3; i++ {
		id, _ := store.Allocate()
		ids = append(ids, id)
	}
	bp := NewBufferPool(store, 2)
	met := obs.New()
	var events []obs.Event
	met.Observer = obs.ObserverFunc(func(e obs.Event) { events = append(events, e) })
	bp.SetMetrics(met)

	// Clean evictions: reading 3 pages through a cap-2 pool evicts one
	// clean frame, no writeback.
	for _, id := range ids {
		if _, err := bp.Get(id); err != nil {
			t.Fatal(err)
		}
	}
	s := bp.Stats()
	if s.Evictions != 1 || s.DirtyWritebacks != 0 {
		t.Fatalf("clean eviction: evictions=%d writebacks=%d, want 1/0", s.Evictions, s.DirtyWritebacks)
	}

	// Dirty eviction: dirty both resident pages, then touch the third
	// page again to force one dirty frame out.
	for _, f := range bp.frames {
		f.dirty = true
	}
	missing := ids[0] // ids[0] was the first one evicted above
	if _, err := bp.Get(missing); err != nil {
		t.Fatal(err)
	}
	s = bp.Stats()
	if s.Evictions != 2 || s.DirtyWritebacks != 1 {
		t.Fatalf("dirty eviction: evictions=%d writebacks=%d, want 2/1", s.Evictions, s.DirtyWritebacks)
	}

	// The obs registry mirrors the pool's own stats.
	snap := met.Snapshot()
	if snap.BufEvictions != s.Evictions || snap.BufDirtyWritebacks != s.DirtyWritebacks {
		t.Errorf("obs counters evictions=%d writebacks=%d, want %d/%d",
			snap.BufEvictions, snap.BufDirtyWritebacks, s.Evictions, s.DirtyWritebacks)
	}
	if snap.BufReads != s.Reads || snap.BufHits != s.Hits {
		t.Errorf("obs reads=%d hits=%d, want %d/%d", snap.BufReads, snap.BufHits, s.Reads, s.Hits)
	}

	// Events: 2 evictions, 1 dirty writeback, writeback announced
	// before its eviction, all at storage level -1.
	var ev, wb int
	for i, e := range events {
		if e.Level != -1 {
			t.Errorf("event %d level = %d, want -1", i, e.Level)
		}
		switch e.Kind {
		case obs.EvEviction:
			ev++
		case obs.EvDirtyWriteback:
			wb++
			if i+1 >= len(events) || events[i+1].Kind != obs.EvEviction {
				t.Error("dirty writeback not followed by its eviction event")
			}
		}
	}
	if ev != 2 || wb != 1 {
		t.Errorf("events: %d evictions, %d writebacks, want 2/1", ev, wb)
	}
}

// TestBufferPoolRandomizedAgainstStore checks that, through arbitrary
// interleavings of pool operations, page contents always match what a
// write-through oracle would hold.
func TestBufferPoolRandomizedAgainstStore(t *testing.T) {
	store := NewMemStore()
	bp := NewBufferPool(store, 3)
	rng := rand.New(rand.NewSource(77))
	oracle := map[PageID][]byte{}
	var ids []PageID
	for step := 0; step < 3000; step++ {
		switch op := rng.Intn(10); {
		case op < 3 || len(ids) == 0: // allocate
			id, data, err := bp.Allocate()
			if err != nil {
				t.Fatal(err)
			}
			rng.Read(data)
			if err := bp.MarkDirty(id); err != nil {
				t.Fatal(err)
			}
			oracle[id] = append([]byte(nil), data...)
			ids = append(ids, id)
		case op < 8: // read and verify
			id := ids[rng.Intn(len(ids))]
			data, err := bp.Get(id)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(data, oracle[id]) {
				t.Fatalf("step %d: page %d diverged from oracle", step, id)
			}
		case op < 9: // overwrite
			id := ids[rng.Intn(len(ids))]
			data, err := bp.Get(id)
			if err != nil {
				t.Fatal(err)
			}
			rng.Read(data)
			if err := bp.MarkDirty(id); err != nil {
				t.Fatal(err)
			}
			oracle[id] = append([]byte(nil), data...)
		default: // flush
			if err := bp.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
}
