package storage

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestBufferPoolReadYourWrites(t *testing.T) {
	bp := NewBufferPool(NewMemStore(), 4)
	id, data, err := bp.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	data[0] = 42
	if err := bp.MarkDirty(id); err != nil {
		t.Fatal(err)
	}
	got, err := bp.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 42 {
		t.Fatal("buffered write not visible")
	}
	if bp.Stats().Reads != 0 {
		t.Errorf("reads = %d, want 0 (allocation and hit only)", bp.Stats().Reads)
	}
}

func TestBufferPoolEvictionWritesBackDirty(t *testing.T) {
	store := NewMemStore()
	bp := NewBufferPool(store, 2)
	a, dataA, _ := bp.Allocate()
	dataA[0] = 1
	bp.MarkDirty(a)
	b, dataB, _ := bp.Allocate()
	dataB[0] = 2
	bp.MarkDirty(b)
	// Third allocation evicts the LRU page (a).
	c, _, _ := bp.Allocate()
	_ = c
	if bp.Resident() != 2 {
		t.Fatalf("resident = %d", bp.Resident())
	}
	if bp.Stats().Writes != 1 {
		t.Fatalf("writes = %d, want 1 (evicted dirty page)", bp.Stats().Writes)
	}
	// Re-reading a must come from the store with the written content.
	got, err := bp.Get(a)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 {
		t.Fatal("dirty page lost on eviction")
	}
	if bp.Stats().Reads != 1 {
		t.Errorf("reads = %d, want 1 (miss on a)", bp.Stats().Reads)
	}
}

func TestBufferPoolLRUOrder(t *testing.T) {
	store := NewMemStore()
	// Pre-create pages directly in the store.
	var ids []PageID
	for i := 0; i < 4; i++ {
		id, _ := store.Allocate()
		ids = append(ids, id)
	}
	bp := NewBufferPool(store, 2)
	bp.Get(ids[0])
	bp.Get(ids[1])
	bp.Get(ids[0]) // 0 is now MRU; 1 is LRU
	bp.Get(ids[2]) // evicts 1
	if _, ok := bp.frames[ids[1]]; ok {
		t.Fatal("LRU page 1 not evicted")
	}
	if _, ok := bp.frames[ids[0]]; !ok {
		t.Fatal("MRU page 0 was evicted")
	}
}

func TestBufferPoolPinnedNeverEvicted(t *testing.T) {
	store := NewMemStore()
	var ids []PageID
	for i := 0; i < 5; i++ {
		id, _ := store.Allocate()
		ids = append(ids, id)
	}
	bp := NewBufferPool(store, 2)
	if err := bp.Pin(ids[0]); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids[1:] {
		if _, err := bp.Get(id); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := bp.frames[ids[0]]; !ok {
		t.Fatal("pinned page was evicted")
	}
	// A pool where everything is pinned must error, not spin.
	bp2 := NewBufferPool(store, 1)
	bp2.Pin(ids[0])
	if _, err := bp2.Get(ids[1]); err == nil {
		t.Fatal("expected error when all frames pinned")
	}
	// Unpin allows progress again.
	bp2.Unpin(ids[0])
	if _, err := bp2.Get(ids[1]); err != nil {
		t.Fatal(err)
	}
}

func TestBufferPoolPinNesting(t *testing.T) {
	store := NewMemStore()
	id, _ := store.Allocate()
	bp := NewBufferPool(store, 1)
	bp.Pin(id)
	bp.Pin(id)
	if err := bp.Unpin(id); err != nil {
		t.Fatal(err)
	}
	// Still pinned once: a second page cannot enter a cap-1 pool.
	id2, _ := store.Allocate()
	if _, err := bp.Get(id2); err == nil {
		t.Fatal("nested pin ignored")
	}
	if err := bp.Unpin(id); err != nil {
		t.Fatal(err)
	}
	if err := bp.Unpin(id); err == nil {
		t.Fatal("unbalanced unpin accepted")
	}
}

func TestBufferPoolFlush(t *testing.T) {
	store := NewMemStore()
	bp := NewBufferPool(store, 4)
	id, data, _ := bp.Allocate()
	data[7] = 9
	bp.MarkDirty(id)
	if err := bp.Flush(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	if err := store.ReadPage(id, buf); err != nil {
		t.Fatal(err)
	}
	if buf[7] != 9 {
		t.Fatal("flush did not reach the store")
	}
	w := bp.Stats().Writes
	// Flushing again writes nothing: pages are clean.
	if err := bp.Flush(); err != nil {
		t.Fatal(err)
	}
	if bp.Stats().Writes != w {
		t.Fatal("clean pages rewritten on second flush")
	}
}

func TestBufferPoolFreeDropsFrame(t *testing.T) {
	store := NewMemStore()
	bp := NewBufferPool(store, 4)
	id, data, _ := bp.Allocate()
	data[0] = 5
	bp.MarkDirty(id)
	if err := bp.Free(id); err != nil {
		t.Fatal(err)
	}
	if bp.Resident() != 0 {
		t.Fatal("freed page still resident")
	}
	if store.Len() != 0 {
		t.Fatal("freed page still allocated in store")
	}
	if bp.Stats().Writes != 0 {
		t.Fatal("freed dirty page was written back")
	}
	// Freeing a pinned page must fail.
	id2, _, _ := bp.Allocate()
	bp.Pin(id2)
	if err := bp.Free(id2); err == nil {
		t.Fatal("freed a pinned page")
	}
}

func TestBufferPoolStatsSub(t *testing.T) {
	a := Stats{Reads: 10, Writes: 4, Hits: 100}
	b := Stats{Reads: 3, Writes: 1, Hits: 40}
	d := a.Sub(b)
	if d.Reads != 7 || d.Writes != 3 || d.Hits != 60 {
		t.Errorf("Sub = %+v", d)
	}
	if a.IO() != 14 {
		t.Errorf("IO = %d", a.IO())
	}
}

// TestBufferPoolRandomizedAgainstStore checks that, through arbitrary
// interleavings of pool operations, page contents always match what a
// write-through oracle would hold.
func TestBufferPoolRandomizedAgainstStore(t *testing.T) {
	store := NewMemStore()
	bp := NewBufferPool(store, 3)
	rng := rand.New(rand.NewSource(77))
	oracle := map[PageID][]byte{}
	var ids []PageID
	for step := 0; step < 3000; step++ {
		switch op := rng.Intn(10); {
		case op < 3 || len(ids) == 0: // allocate
			id, data, err := bp.Allocate()
			if err != nil {
				t.Fatal(err)
			}
			rng.Read(data)
			if err := bp.MarkDirty(id); err != nil {
				t.Fatal(err)
			}
			oracle[id] = append([]byte(nil), data...)
			ids = append(ids, id)
		case op < 8: // read and verify
			id := ids[rng.Intn(len(ids))]
			data, err := bp.Get(id)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(data, oracle[id]) {
				t.Fatalf("step %d: page %d diverged from oracle", step, id)
			}
		case op < 9: // overwrite
			id := ids[rng.Intn(len(ids))]
			data, err := bp.Get(id)
			if err != nil {
				t.Fatal(err)
			}
			rng.Read(data)
			if err := bp.MarkDirty(id); err != nil {
				t.Fatal(err)
			}
			oracle[id] = append([]byte(nil), data...)
		default: // flush
			if err := bp.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
}
