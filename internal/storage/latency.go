package storage

import (
	"time"

	"rexptree/internal/obs"
)

// LatencyStore wraps a Store and charges a fixed wall-clock latency to
// every page read and write that reaches it.  The paper's experiments
// use page I/Os as the cost metric because each one is a random disk
// access (§5.1); wrapping a store in a LatencyStore makes that cost
// physical, so timing benchmarks reproduce the I/O-bound regime the
// paper assumes instead of measuring the RAM-resident fast path.
type LatencyStore struct {
	Inner Store

	// ReadLatency and WriteLatency are slept on every ReadPage and
	// WritePage respectively; zero disables the charge.
	ReadLatency  time.Duration
	WriteLatency time.Duration
}

// SetMetrics forwards the instrument registry to the wrapped store
// when it supports one.
func (s *LatencyStore) SetMetrics(m *obs.Metrics) {
	if inner, ok := s.Inner.(interface{ SetMetrics(*obs.Metrics) }); ok {
		inner.SetMetrics(m)
	}
}

// ReadPage implements Store.
func (s *LatencyStore) ReadPage(id PageID, buf []byte) error {
	if s.ReadLatency > 0 {
		time.Sleep(s.ReadLatency)
	}
	return s.Inner.ReadPage(id, buf)
}

// WritePage implements Store.
func (s *LatencyStore) WritePage(id PageID, buf []byte) error {
	if s.WriteLatency > 0 {
		time.Sleep(s.WriteLatency)
	}
	return s.Inner.WritePage(id, buf)
}

// Allocate implements Store.  Allocation itself is not charged: the
// page's contents reach the device through WritePage.
func (s *LatencyStore) Allocate() (PageID, error) { return s.Inner.Allocate() }

// Free implements Store.
func (s *LatencyStore) Free(id PageID) error { return s.Inner.Free(id) }

// Sync implements Syncer by forwarding to the wrapped store.
func (s *LatencyStore) Sync() error { return SyncStore(s.Inner) }

// Len implements Store.
func (s *LatencyStore) Len() int { return s.Inner.Len() }

// Close implements Store.
func (s *LatencyStore) Close() error { return s.Inner.Close() }
