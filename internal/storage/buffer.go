package storage

import (
	"container/list"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rexptree/internal/obs"
)

// Stats counts the page traffic between a BufferPool and its Store.
type Stats struct {
	Reads           uint64 // pages read from the store (buffer misses)
	Writes          uint64 // pages written to the store
	Hits            uint64 // page requests served from the buffer
	Evictions       uint64 // frames evicted by LRU replacement
	DirtyWritebacks uint64 // evictions that had to write the frame back
}

// IO returns reads + writes, the combined I/O count.
func (s Stats) IO() uint64 { return s.Reads + s.Writes }

// Sub returns the traffic accumulated since the earlier snapshot o.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Reads:           s.Reads - o.Reads,
		Writes:          s.Writes - o.Writes,
		Hits:            s.Hits - o.Hits,
		Evictions:       s.Evictions - o.Evictions,
		DirtyWritebacks: s.DirtyWritebacks - o.DirtyWritebacks,
	}
}

type frame struct {
	id     PageID
	data   []byte
	dirty  bool
	pins   int
	lruPos *list.Element // nil while pinned (not on the LRU list)

	// ref is the second-chance reference bit: the lock-free hit path
	// sets it instead of reordering the mutex-guarded LRU list, and
	// eviction gives a referenced frame one more round before dropping
	// it.  It is the only frame field touched without bp.mu.
	ref atomic.Bool
}

// BufferPool caches up to cap pages of a Store with LRU replacement,
// as in the experimental setup of the paper (§5.1): 50 pages of 4 KiB,
// the tree root pinned, dirty pages written back on eviction or on
// explicit flush.
//
// Every method is safe for concurrent use.  The hit path is lock-free:
// resident frames are published in a dense atomic table indexed by page
// id, so a Get that finds its page buffered touches no mutex at all —
// it marks the frame's second-chance reference bit instead of
// reordering the LRU list.  One mutex still serializes everything else
// (misses, eviction, allocation, flush, the LRU list and the store).
// A slice returned by Get stays memory-safe after a concurrent
// eviction (the frame is dropped, not recycled), but its contents are
// only stable while no writer mutates the page — the tree layer's
// locking discipline guarantees that.
type BufferPool struct {
	mu       sync.Mutex
	store    Store
	capacity int
	noSteal  bool
	frames   map[PageID]*frame
	lru      *list.List // front = most recently used; unpinned frames only
	stats    Stats
	met      *obs.Metrics // nil when uninstrumented

	// readTbl is the lock-free lookup table: one atomic frame pointer
	// per page id, non-nil exactly for resident pages.  Mutated only
	// under mu (admit, evict, free); read by anyone.  Grown
	// copy-on-write, so readers may briefly see a shorter table and
	// fall through to the mutex path, which double-checks frames.
	readTbl atomic.Pointer[[]atomic.Pointer[frame]]

	// hitsLF counts hits served by the lock-free path; Stats folds it
	// into Hits so the total matches the mutex-only implementation.
	hitsLF atomic.Uint64

	// I/O phase-timer sample counters.  Atomic because store reads can
	// be triggered from the snapshot read path's fallback concurrently
	// with mutex-path misses; uniform 1-in-N sampling must stay sound
	// no matter which path issues the read.
	ioReadN  atomic.Uint64
	ioWriteN atomic.Uint64
}

// NewBufferPool wraps store with a buffer of the given page capacity.
func NewBufferPool(store Store, capacity int) *BufferPool {
	if capacity < 1 {
		capacity = 1
	}
	bp := &BufferPool{
		store:    store,
		capacity: capacity,
		frames:   make(map[PageID]*frame, capacity),
		lru:      list.New(),
	}
	empty := make([]atomic.Pointer[frame], 0)
	bp.readTbl.Store(&empty)
	return bp
}

// Stats returns the accumulated I/O counters.  Hits served by the
// lock-free path are folded in, so the totals match what a mutex-only
// pool would report.
func (bp *BufferPool) Stats() Stats {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	s := bp.stats
	s.Hits += bp.hitsLF.Load()
	return s
}

// SetMetrics attaches (or with nil detaches) an instrument registry.
// The registry is forwarded to the underlying store when it supports
// metrics (a FaultStore counts its trips there).
func (bp *BufferPool) SetMetrics(m *obs.Metrics) {
	bp.met = m
	if s, ok := bp.store.(interface{ SetMetrics(*obs.Metrics) }); ok {
		s.SetMetrics(m)
	}
}

// ResetStats zeroes the I/O counters.
func (bp *BufferPool) ResetStats() {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.stats = Stats{}
	bp.hitsLF.Store(0)
}

// tblSet publishes (f non-nil) or withdraws (f nil) the page's frame
// in the lock-free lookup table, growing the table as the store
// allocates higher page ids.  Caller holds bp.mu.
func (bp *BufferPool) tblSet(id PageID, f *frame) {
	tbl := *bp.readTbl.Load()
	if int(id) >= len(tbl) {
		if f == nil {
			return // clearing a slot that was never published
		}
		n := 2 * len(tbl)
		if n < int(id)+1 {
			n = int(id) + 1
		}
		if n < 64 {
			n = 64
		}
		grown := make([]atomic.Pointer[frame], n)
		for i := range tbl {
			grown[i].Store(tbl[i].Load())
		}
		bp.readTbl.Store(&grown)
		tbl = grown
	}
	tbl[id].Store(f)
}

// lookup is the lock-free resident-frame probe.
func (bp *BufferPool) lookup(id PageID) *frame {
	tbl := *bp.readTbl.Load()
	if int(id) < len(tbl) {
		return tbl[id].Load()
	}
	return nil
}

// Store returns the underlying page store.
func (bp *BufferPool) Store() Store { return bp.store }

func (bp *BufferPool) touch(f *frame) {
	if f.lruPos != nil {
		bp.lru.MoveToFront(f.lruPos)
	}
}

// errNoCleanFrame reports that a no-steal eviction pass found only
// dirty (or pinned) frames; the pool overflows instead of stealing.
var errNoCleanFrame = errors.New("storage: no clean frame to evict")

// evictOne writes back and drops the least recently used unpinned
// frame.  It returns an error if every frame is pinned.  Under the
// no-steal policy dirty frames are never evicted — a dirty page may
// only reach the store through an explicit Flush, so the on-disk state
// stays exactly the last checkpoint's; if no clean frame exists the
// pool overflows (errNoCleanFrame).
// evictOne implements second-chance LRU: the lock-free hit path cannot
// reorder the mutex-guarded list, so it marks the frame's reference
// bit instead, and eviction rotates referenced frames to the front
// (consuming the bit) before dropping the first unreferenced victim.
// The rotation budget is bounded so concurrent readers re-marking
// frames cannot livelock the writer: after 2×len(lru) rounds the
// reference bits are ignored and the back frame goes.
func (bp *BufferPool) evictOne() error {
	limit := 2 * bp.lru.Len()
	for round := 0; ; round++ {
		e := bp.lru.Back()
		if bp.noSteal {
			for e != nil && e.Value.(*frame).dirty {
				e = e.Prev()
			}
			if e == nil {
				return errNoCleanFrame
			}
		}
		if e == nil {
			return fmt.Errorf("storage: buffer pool full of pinned pages (cap %d)", bp.capacity)
		}
		f := e.Value.(*frame)
		if round < limit && f.ref.CompareAndSwap(true, false) {
			bp.lru.MoveToFront(e)
			continue
		}
		return bp.evictFrame(e, f)
	}
}

// evictFrame writes back and drops one chosen frame.  Caller holds
// bp.mu.
func (bp *BufferPool) evictFrame(e *list.Element, f *frame) error {
	if !bp.noSteal && f.dirty {
		if err := bp.writePage(f.id, f.data); err != nil {
			return err
		}
		bp.stats.Writes++
		bp.stats.DirtyWritebacks++
		if bp.met != nil {
			bp.met.BufWrites.Inc()
			bp.met.BufDirtyWritebacks.Inc()
			bp.met.Emit(obs.Event{Kind: obs.EvDirtyWriteback, Level: -1, N: 1})
		}
	}
	bp.stats.Evictions++
	if bp.met != nil {
		bp.met.BufEvictions.Inc()
		bp.met.Emit(obs.Event{Kind: obs.EvEviction, Level: -1, N: 1})
	}
	bp.lru.Remove(e)
	delete(bp.frames, f.id)
	bp.tblSet(f.id, nil)
	return nil
}

func (bp *BufferPool) admit(f *frame) error {
	for len(bp.frames) >= bp.capacity {
		if err := bp.evictOne(); err != nil {
			if bp.noSteal && errors.Is(err, errNoCleanFrame) {
				break
			}
			return err
		}
	}
	bp.frames[f.id] = f
	f.lruPos = bp.lru.PushFront(f)
	bp.tblSet(f.id, f)
	return nil
}

// SetNoSteal selects the no-steal replacement policy (see evictOne).
// The write-ahead-logged tree enables it so page writes only happen at
// checkpoints.
func (bp *BufferPool) SetNoSteal(v bool) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.noSteal = v
}

// Overflow returns how many resident pages exceed the configured
// capacity — under no-steal, how much dirty state has piled up beyond
// the budget.  The tree uses it as a checkpoint trigger.
func (bp *BufferPool) Overflow() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if n := len(bp.frames) - bp.capacity; n > 0 {
		return n
	}
	return 0
}

// DirtyPages calls fn for every dirty resident page in ascending page
// order.  The slice passed to fn aliases the frame; fn must not retain
// it.  Dirty flags are not cleared — Flush does that when the
// checkpoint writes the pages to the store.
func (bp *BufferPool) DirtyPages(fn func(id PageID, data []byte) error) error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	ids := make([]PageID, 0, len(bp.frames))
	for id, f := range bp.frames {
		if f.dirty {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if err := fn(id, bp.frames[id].data); err != nil {
			return err
		}
	}
	return nil
}

// Get returns the contents of the page, reading it from the store on a
// miss.  A hit on a resident page takes no lock (see hitFast); only
// misses fall through to the mutex.  The returned slice aliases the
// buffer frame: it is valid until the page is evicted, so callers must
// not retain it across other pool operations unless the page is
// pinned.
func (bp *BufferPool) Get(id PageID) ([]byte, error) {
	if f := bp.lookup(id); f != nil {
		bp.hitFast(f)
		return f.data, nil
	}
	bp.mu.Lock()
	defer bp.mu.Unlock()
	data, _, err := bp.getTracked(id)
	return data, err
}

// GetTracked is Get plus a hit report: it returns whether the request
// was served from the buffer (true) or had to read the store (false).
// Query tracing uses it to attribute per-traversal cache behavior.
func (bp *BufferPool) GetTracked(id PageID) ([]byte, bool, error) {
	if f := bp.lookup(id); f != nil {
		bp.hitFast(f)
		return f.data, true, nil
	}
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.getTracked(id)
}

// hitFast records a lock-free hit: the frame's second-chance bit
// replaces the LRU reorder, and the hit counters are atomic.
func (bp *BufferPool) hitFast(f *frame) {
	f.ref.Store(true)
	bp.hitsLF.Add(1)
	if bp.met != nil {
		bp.met.BufHits.Inc()
		bp.met.BufLockFreeHits.Inc()
	}
}

func (bp *BufferPool) get(id PageID) ([]byte, error) {
	data, _, err := bp.getTracked(id)
	return data, err
}

func (bp *BufferPool) getTracked(id PageID) ([]byte, bool, error) {
	if f, ok := bp.frames[id]; ok {
		bp.stats.Hits++
		if bp.met != nil {
			bp.met.BufHits.Inc()
		}
		bp.touch(f)
		return f.data, true, nil
	}
	f := &frame{id: id, data: make([]byte, PageSize)}
	if err := bp.readPage(id, f.data); err != nil {
		return nil, false, err
	}
	bp.stats.Reads++
	if bp.met != nil {
		bp.met.BufReads.Inc()
	}
	if err := bp.admit(f); err != nil {
		return nil, false, err
	}
	return f.data, false, nil
}

// ioSampleEvery is the 1-in-N sampling rate for the io_read/io_write
// phase timers.  Memory-backed stores serve a 4 KiB page in well under
// the clock readings' own cost, so timing every call on the miss path
// would cost more than the work being measured; uniform sampling keeps
// the latency distribution representative while bounding the timer
// overhead.  (Volume is counted exactly by rexp_buffer_reads_total /
// _writes_total; the phase histogram's _count is the sample count.)
const ioSampleEvery = 8

// readPage reads the page from the store, timing a uniform sample of
// reads into the io_read phase histogram when instrumented.  The
// sample counter is atomic (not mutex-protected) so every store read
// is counted toward the 1-in-N sample no matter which path triggered
// it — mutex-path misses and the snapshot read path's buffer fallback
// alike — keeping the phase histogram from undercounting.
func (bp *BufferPool) readPage(id PageID, data []byte) error {
	if bp.met == nil {
		return bp.store.ReadPage(id, data)
	}
	if bp.ioReadN.Add(1)%ioSampleEvery != 0 {
		return bp.store.ReadPage(id, data)
	}
	start := time.Now()
	err := bp.store.ReadPage(id, data)
	bp.met.ObservePhase(obs.PhaseIORead, time.Since(start))
	return err
}

// writePage writes the page to the store, timing a uniform sample of
// writes into the io_write phase histogram when instrumented.
func (bp *BufferPool) writePage(id PageID, data []byte) error {
	if bp.met == nil {
		return bp.store.WritePage(id, data)
	}
	if bp.ioWriteN.Add(1)%ioSampleEvery != 0 {
		return bp.store.WritePage(id, data)
	}
	start := time.Now()
	err := bp.store.WritePage(id, data)
	bp.met.ObservePhase(obs.PhaseIOWrite, time.Since(start))
	return err
}

// MarkDirty records that the page's buffered contents differ from the
// store.  The page must be resident (obtained via Get or Allocate and
// not yet evicted); keeping it resident while mutating is the caller's
// responsibility (pin it or mark immediately after Get).
func (bp *BufferPool) MarkDirty(id PageID) error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	f, ok := bp.frames[id]
	if !ok {
		return fmt.Errorf("storage: MarkDirty(%d): page not resident", id)
	}
	f.dirty = true
	return nil
}

// Pin prevents the page from being evicted until a matching Unpin.
// Pins nest.
func (bp *BufferPool) Pin(id PageID) error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	f, ok := bp.frames[id]
	if !ok {
		if _, err := bp.get(id); err != nil {
			return err
		}
		f = bp.frames[id]
	}
	f.pins++
	if f.lruPos != nil {
		bp.lru.Remove(f.lruPos)
		f.lruPos = nil
	}
	return nil
}

// Unpin releases one pin on the page.
func (bp *BufferPool) Unpin(id PageID) error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	f, ok := bp.frames[id]
	if !ok || f.pins == 0 {
		return fmt.Errorf("storage: Unpin(%d): page not pinned", id)
	}
	f.pins--
	if f.pins == 0 {
		f.lruPos = bp.lru.PushFront(f)
	}
	return nil
}

// Allocate obtains a fresh zeroed page from the store and installs it
// in the buffer as dirty, so creating a node costs no read I/O.
func (bp *BufferPool) Allocate() (PageID, []byte, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	id, err := bp.store.Allocate()
	if err != nil {
		return InvalidPage, nil, err
	}
	f := &frame{id: id, data: make([]byte, PageSize), dirty: true}
	if err := bp.admit(f); err != nil {
		return InvalidPage, nil, err
	}
	return id, f.data, nil
}

// Free drops the page from the buffer (without write-back) and
// releases it in the store.
func (bp *BufferPool) Free(id PageID) error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if f, ok := bp.frames[id]; ok {
		if f.pins > 0 {
			return fmt.Errorf("storage: Free(%d): page is pinned", id)
		}
		if f.lruPos != nil {
			bp.lru.Remove(f.lruPos)
		}
		delete(bp.frames, id)
		bp.tblSet(id, nil)
	}
	return bp.store.Free(id)
}

// Flush writes every dirty frame back to the store, leaving all pages
// resident.
func (bp *BufferPool) Flush() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for _, f := range bp.frames {
		if !f.dirty {
			continue
		}
		if err := bp.writePage(f.id, f.data); err != nil {
			return err
		}
		f.dirty = false
		bp.stats.Writes++
		if bp.met != nil {
			bp.met.BufWrites.Inc()
		}
	}
	return nil
}

// Cap returns the pool's page capacity.
func (bp *BufferPool) Cap() int { return bp.capacity }

// Resident returns the number of buffered pages (for tests).
func (bp *BufferPool) Resident() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return len(bp.frames)
}
