package storage

import (
	"math/rand"
	"testing"
)

func BenchmarkBufferPoolHit(b *testing.B) {
	store := NewMemStore()
	bp := NewBufferPool(store, 8)
	var ids []PageID
	for i := 0; i < 8; i++ {
		id, _, err := bp.Allocate()
		if err != nil {
			b.Fatal(err)
		}
		ids = append(ids, id)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bp.Get(ids[i%8]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBufferPoolMissEvict(b *testing.B) {
	store := NewMemStore()
	var ids []PageID
	for i := 0; i < 64; i++ {
		id, err := store.Allocate()
		if err != nil {
			b.Fatal(err)
		}
		ids = append(ids, id)
	}
	bp := NewBufferPool(store, 8)
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bp.Get(ids[rng.Intn(64)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFileStoreWrite(b *testing.B) {
	s, err := CreateFileStore(b.TempDir() + "/bench.db")
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	id, err := s.Allocate()
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, PageSize)
	b.SetBytes(PageSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf[0] = byte(i)
		if err := s.WritePage(id, buf); err != nil {
			b.Fatal(err)
		}
	}
}
