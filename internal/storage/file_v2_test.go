package storage

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"rexptree/internal/obs"
)

// payloadOffset is where page id's payload starts in a v2 file (after
// the superblock page and the slot's checksum header).
func payloadOffset(id PageID) int64 {
	return PageSize + int64(id)*slotSizeV2 + pageHdrSize
}

func flipBit(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x01
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}

// TestFileStoreV2ChecksumDetectsFlippedBit checks that a single bit
// flipped in a cold page surfaces as ErrChecksum on read — counted in
// the metrics — and is caught by VerifyPage, never returned as data.
func TestFileStoreV2ChecksumDetectsFlippedBit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v2.idx")
	s, err := CreateFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	id, err := s.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	for i := range buf {
		buf[i] = byte(i)
	}
	if err := s.WritePage(id, buf); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	flipBit(t, path, payloadOffset(id)+1234)

	s, err = OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	met := obs.New()
	s.SetMetrics(met)
	got := make([]byte, PageSize)
	if err := s.ReadPage(id, got); !errors.Is(err, ErrChecksum) {
		t.Fatalf("ReadPage = %v, want ErrChecksum", err)
	}
	if met.ChecksumFailures.Load() == 0 {
		t.Fatal("checksum failure not counted")
	}
	if err := s.VerifyPage(id); !errors.Is(err, ErrChecksum) {
		t.Fatalf("VerifyPage = %v, want ErrChecksum", err)
	}
}

// TestFileStoreV2SuperblockChecksum checks that a corrupted superblock
// is refused at open.
func TestFileStoreV2SuperblockChecksum(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v2.idx")
	s, err := CreateFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Allocate(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	flipBit(t, path, 4) // numPages field, covered by the superblock CRC
	if _, err := OpenFileStore(path); err == nil {
		t.Fatal("open accepted a corrupt superblock")
	}
}

// TestFileStoreDirtyFlag checks the unclean-shutdown marker: MarkDirty
// persists immediately, CloseKeepDirty leaves it set, Close clears it.
func TestFileStoreDirtyFlag(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v2.idx")
	s, err := CreateFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Dirty() {
		t.Fatal("fresh store is dirty")
	}
	if _, err := s.Allocate(); err != nil {
		t.Fatal(err)
	}
	if err := s.MarkDirty(); err != nil {
		t.Fatal(err)
	}
	if !s.Dirty() {
		t.Fatal("MarkDirty did not set the flag")
	}
	if err := s.CloseKeepDirty(); err != nil {
		t.Fatal(err)
	}

	s, err = OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Dirty() {
		t.Fatal("dirty flag lost across reopen")
	}
	if err := s.Close(); err != nil { // clean close clears it
		t.Fatal(err)
	}
	s, err = OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Dirty() {
		t.Fatal("Close did not clear the dirty flag")
	}
	s.Close()
}

// TestFileStoreMarkDirtyV1Refused checks that the legacy format, which
// has no dirty flag or checksums, cannot be put into durable mode.
func TestFileStoreMarkDirtyV1Refused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v1.idx")
	s, err := createFileStore(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Version() != 1 {
		t.Fatalf("version = %d, want 1", s.Version())
	}
	if _, err := s.Allocate(); err != nil {
		t.Fatal(err)
	}
	if err := s.MarkDirty(); err == nil {
		t.Fatal("MarkDirty succeeded on a v1 file")
	}
	if err := s.VerifyPage(0); err != nil {
		t.Fatalf("v1 VerifyPage = %v, want nil (no checksums to check)", err)
	}
}

// TestFileStoreDeferFrees checks the deferred-free quarantine: freed
// pages are not reused while deferral is on, and become reusable once
// it is turned off.
func TestFileStoreDeferFrees(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v2.idx")
	s, err := CreateFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	a, _ := s.Allocate()
	b, _ := s.Allocate()
	s.SetDeferFrees(true)
	if err := s.Free(b); err != nil {
		t.Fatal(err)
	}
	c, err := s.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if c == b {
		t.Fatal("deferred-freed page was reused")
	}
	s.SetDeferFrees(false)
	d, err := s.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if d != b {
		t.Fatalf("after deferral ends, Allocate = %d, want recycled %d", d, b)
	}
	_ = a
}

// TestFileStoreRecoverySurface checks the recovery hooks: SetPageCount
// extends the file, WriteImage writes past the freed-set guard, and
// ResetFreeList rebuilds the free list from a live set.
func TestFileStoreRecoverySurface(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v2.idx")
	s, err := CreateFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 4; i++ {
		if _, err := s.Allocate(); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Free(3); err != nil {
		t.Fatal(err)
	}
	// An image may target a freed page (recovery does not know the
	// free list yet) or a page beyond the current count.
	img := make([]byte, PageSize)
	img[0] = 9
	if err := s.WriteImage(3, img); err != nil {
		t.Fatalf("WriteImage to freed page: %v", err)
	}
	s.SetPageCount(6)
	if s.PageCount() != 6 {
		t.Fatalf("PageCount = %d, want 6", s.PageCount())
	}
	if err := s.WriteImage(5, img); err != nil {
		t.Fatalf("WriteImage to extended page: %v", err)
	}
	// Live set {0,1,5}: 2, 3, 4 become free and are handed out again.
	s.ResetFreeList(map[PageID]bool{0: true, 1: true, 5: true})
	got := map[PageID]bool{}
	for i := 0; i < 3; i++ {
		id, err := s.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		got[id] = true
	}
	for _, want := range []PageID{2, 3, 4} {
		if !got[want] {
			t.Fatalf("free page %d was not recycled (got %v)", want, got)
		}
	}
}
