package storage

import (
	"errors"
	"fmt"

	"rexptree/internal/obs"
)

// ErrInjected is the base error returned by a FaultStore when a fault
// fires.
var ErrInjected = errors.New("storage: injected fault")

// FaultKind selects what happens when a FaultStore's countdown trips
// on a write.
type FaultKind int

const (
	// FaultErr fails the operation with ErrInjected and leaves the
	// wrapped store untouched (the default).
	FaultErr FaultKind = iota
	// FaultTornWrite models a crash mid-write: only a prefix of the
	// write persists, and the operation still reports ErrInjected.
	// When the wrapped store supports TornWriter (FileStore does) the
	// tear is injected below the checksum layer — the first TornBytes
	// of the encoded on-disk slot persist, the rest keeps its previous
	// content, so the stored CRC genuinely mismatches.  Otherwise the
	// first TornBytes of the page reach the wrapped store through the
	// normal write path and the rest of the page is zeroed.
	FaultTornWrite
)

// TornWriter is implemented by stores that can persist a raw slot
// prefix without recomputing checksums, so an injected torn write
// produces the same on-disk state a real one would.
type TornWriter interface {
	WritePageTorn(id PageID, buf []byte, n int) error
}

// FaultStore wraps a Store and fails operations on demand.  It exists
// for failure-injection tests: the index must surface storage errors
// instead of corrupting state or panicking.
type FaultStore struct {
	Inner Store

	// FailAfter, when positive, counts down on every operation; the
	// operation that reaches zero (and every later one until the
	// counter is reset) fails.
	FailAfter int

	// FailReads / FailWrites / FailSyncs restrict which operations can
	// fail (and count against the FailAfter countdown).
	FailReads  bool
	FailWrites bool
	FailSyncs  bool

	// Kind selects the failure behavior for page writes; TornBytes is
	// the persisted prefix length for FaultTornWrite.
	Kind      FaultKind
	TornBytes int

	ops int
	met *obs.Metrics
}

// SetMetrics attaches an instrument registry so fired faults are
// counted; it is forwarded to the wrapped store when supported.
func (s *FaultStore) SetMetrics(m *obs.Metrics) {
	s.met = m
	if inner, ok := s.Inner.(interface{ SetMetrics(*obs.Metrics) }); ok {
		inner.SetMetrics(m)
	}
}

// NewFaultStore wraps inner with both read and write faults armed but
// no countdown set (FailAfter zero disables faulting).
func NewFaultStore(inner Store) *FaultStore {
	return &FaultStore{Inner: inner, FailReads: true, FailWrites: true}
}

// Arm sets the countdown: the n-th matching operation from now fails.
func (s *FaultStore) Arm(n int) { s.FailAfter = n; s.ops = 0 }

// Disarm turns faulting off.
func (s *FaultStore) Disarm() { s.FailAfter = 0 }

func (s *FaultStore) maybeFail(kind string) error {
	if s.FailAfter <= 0 {
		return nil
	}
	s.ops++
	if s.ops >= s.FailAfter {
		if s.met != nil {
			s.met.FaultTrips.Inc()
			s.met.Emit(obs.Event{Kind: obs.EvFaultTrip, Level: -1, N: 1})
		}
		return fmt.Errorf("%w: %s #%d", ErrInjected, kind, s.ops)
	}
	return nil
}

// ReadPage implements Store.
func (s *FaultStore) ReadPage(id PageID, buf []byte) error {
	if s.FailReads {
		if err := s.maybeFail("read"); err != nil {
			return err
		}
	}
	return s.Inner.ReadPage(id, buf)
}

// WritePage implements Store.
func (s *FaultStore) WritePage(id PageID, buf []byte) error {
	if s.FailWrites {
		if err := s.maybeFail("write"); err != nil {
			if s.Kind == FaultTornWrite {
				// Best effort: the torn prefix lands in the store even
				// though the operation reports failure, like a write
				// interrupted by a crash.
				if tw, ok := s.Inner.(TornWriter); ok {
					tw.WritePageTorn(id, buf, s.TornBytes)
				} else {
					n := s.TornBytes
					if n < 0 {
						n = 0
					}
					if n > len(buf) {
						n = len(buf)
					}
					torn := make([]byte, len(buf))
					copy(torn, buf[:n])
					s.Inner.WritePage(id, torn)
				}
			}
			return err
		}
	}
	return s.Inner.WritePage(id, buf)
}

// Sync implements Syncer: it forwards to the wrapped store, failing
// first when sync faults are armed (FailSyncs).
func (s *FaultStore) Sync() error {
	if s.FailSyncs {
		if err := s.maybeFail("sync"); err != nil {
			return err
		}
	}
	return SyncStore(s.Inner)
}

// Allocate implements Store.
func (s *FaultStore) Allocate() (PageID, error) {
	if s.FailWrites {
		if err := s.maybeFail("allocate"); err != nil {
			return InvalidPage, err
		}
	}
	return s.Inner.Allocate()
}

// Free implements Store.
func (s *FaultStore) Free(id PageID) error {
	if s.FailWrites {
		if err := s.maybeFail("free"); err != nil {
			return err
		}
	}
	return s.Inner.Free(id)
}

// Len implements Store.
func (s *FaultStore) Len() int { return s.Inner.Len() }

// Close implements Store.
func (s *FaultStore) Close() error { return s.Inner.Close() }
