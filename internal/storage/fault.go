package storage

import (
	"errors"
	"fmt"

	"rexptree/internal/obs"
)

// ErrInjected is the base error returned by a FaultStore when a fault
// fires.
var ErrInjected = errors.New("storage: injected fault")

// FaultStore wraps a Store and fails operations on demand.  It exists
// for failure-injection tests: the index must surface storage errors
// instead of corrupting state or panicking.
type FaultStore struct {
	Inner Store

	// FailAfter, when positive, counts down on every operation; the
	// operation that reaches zero (and every later one until the
	// counter is reset) fails.
	FailAfter int

	// FailReads / FailWrites restrict which operations can fail.
	FailReads  bool
	FailWrites bool

	ops int
	met *obs.Metrics
}

// SetMetrics attaches an instrument registry so fired faults are
// counted; it is forwarded to the wrapped store when supported.
func (s *FaultStore) SetMetrics(m *obs.Metrics) {
	s.met = m
	if inner, ok := s.Inner.(interface{ SetMetrics(*obs.Metrics) }); ok {
		inner.SetMetrics(m)
	}
}

// NewFaultStore wraps inner with both read and write faults armed but
// no countdown set (FailAfter zero disables faulting).
func NewFaultStore(inner Store) *FaultStore {
	return &FaultStore{Inner: inner, FailReads: true, FailWrites: true}
}

// Arm sets the countdown: the n-th matching operation from now fails.
func (s *FaultStore) Arm(n int) { s.FailAfter = n; s.ops = 0 }

// Disarm turns faulting off.
func (s *FaultStore) Disarm() { s.FailAfter = 0 }

func (s *FaultStore) maybeFail(kind string) error {
	if s.FailAfter <= 0 {
		return nil
	}
	s.ops++
	if s.ops >= s.FailAfter {
		if s.met != nil {
			s.met.FaultTrips.Inc()
			s.met.Emit(obs.Event{Kind: obs.EvFaultTrip, Level: -1, N: 1})
		}
		return fmt.Errorf("%w: %s #%d", ErrInjected, kind, s.ops)
	}
	return nil
}

// ReadPage implements Store.
func (s *FaultStore) ReadPage(id PageID, buf []byte) error {
	if s.FailReads {
		if err := s.maybeFail("read"); err != nil {
			return err
		}
	}
	return s.Inner.ReadPage(id, buf)
}

// WritePage implements Store.
func (s *FaultStore) WritePage(id PageID, buf []byte) error {
	if s.FailWrites {
		if err := s.maybeFail("write"); err != nil {
			return err
		}
	}
	return s.Inner.WritePage(id, buf)
}

// Allocate implements Store.
func (s *FaultStore) Allocate() (PageID, error) {
	if s.FailWrites {
		if err := s.maybeFail("allocate"); err != nil {
			return InvalidPage, err
		}
	}
	return s.Inner.Allocate()
}

// Free implements Store.
func (s *FaultStore) Free(id PageID) error {
	if s.FailWrites {
		if err := s.maybeFail("free"); err != nil {
			return err
		}
	}
	return s.Inner.Free(id)
}

// Len implements Store.
func (s *FaultStore) Len() int { return s.Inner.Len() }

// Close implements Store.
func (s *FaultStore) Close() error { return s.Inner.Close() }
