package storage

import (
	"errors"
	"path/filepath"
	"testing"

	"rexptree/internal/obs"
)

func TestFaultStorePassthrough(t *testing.T) {
	fs := NewFaultStore(NewMemStore())
	id, err := fs.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	buf[0] = 7
	if err := fs.WritePage(id, buf); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, PageSize)
	if err := fs.ReadPage(id, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 7 {
		t.Fatal("passthrough lost data")
	}
	if fs.Len() != 1 {
		t.Fatalf("Len = %d", fs.Len())
	}
}

func TestFaultStoreCountdown(t *testing.T) {
	fs := NewFaultStore(NewMemStore())
	id, _ := fs.Allocate()
	buf := make([]byte, PageSize)
	fs.Arm(3)
	if err := fs.ReadPage(id, buf); err != nil { // op 1
		t.Fatalf("op 1 failed early: %v", err)
	}
	if err := fs.WritePage(id, buf); err != nil { // op 2
		t.Fatalf("op 2 failed early: %v", err)
	}
	if err := fs.ReadPage(id, buf); !errors.Is(err, ErrInjected) { // op 3
		t.Fatalf("op 3 = %v, want injected", err)
	}
	// Stays failed until disarmed.
	if err := fs.ReadPage(id, buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("op 4 = %v, want injected", err)
	}
	fs.Disarm()
	if err := fs.ReadPage(id, buf); err != nil {
		t.Fatalf("after disarm: %v", err)
	}
}

func TestFaultStoreSelectiveKinds(t *testing.T) {
	fs := NewFaultStore(NewMemStore())
	fs.FailReads = false
	id, _ := fs.Allocate()
	buf := make([]byte, PageSize)
	fs.Arm(1)
	if err := fs.ReadPage(id, buf); err != nil {
		t.Fatalf("read should not fail: %v", err)
	}
	if err := fs.WritePage(id, buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("write = %v, want injected", err)
	}
	fs.Disarm()

	fs2 := NewFaultStore(NewMemStore())
	fs2.FailWrites = false
	id2, _ := fs2.Allocate()
	fs2.Arm(1)
	if err := fs2.WritePage(id2, buf); err != nil {
		t.Fatalf("write should not fail: %v", err)
	}
	if err := fs2.ReadPage(id2, buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("read = %v, want injected", err)
	}
}

func TestFaultStoreFreeAndAllocateFail(t *testing.T) {
	fs := NewFaultStore(NewMemStore())
	id, _ := fs.Allocate()
	fs.Arm(1)
	if err := fs.Free(id); !errors.Is(err, ErrInjected) {
		t.Fatalf("free = %v, want injected", err)
	}
	if _, err := fs.Allocate(); !errors.Is(err, ErrInjected) {
		t.Fatalf("allocate = %v, want injected", err)
	}
}

// TestFaultStoreCountsTrips checks that fired faults — and only fired
// faults — are counted and announced to the observer.
func TestFaultStoreCountsTrips(t *testing.T) {
	fs := NewFaultStore(NewMemStore())
	met := obs.New()
	var trips int
	met.Observer = obs.ObserverFunc(func(e obs.Event) {
		if e.Kind == obs.EvFaultTrip {
			if e.Level != -1 {
				t.Errorf("fault-trip level = %d, want -1", e.Level)
			}
			trips++
		}
	})
	fs.SetMetrics(met)
	id, _ := fs.Allocate()
	buf := make([]byte, PageSize)
	if err := fs.WritePage(id, buf); err != nil {
		t.Fatal(err)
	}
	if met.FaultTrips.Load() != 0 {
		t.Fatal("disarmed store counted a trip")
	}
	fs.Arm(2)
	if err := fs.ReadPage(id, buf); err != nil { // op 1 of 2: passes
		t.Fatal(err)
	}
	if err := fs.ReadPage(id, buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("read = %v, want injected", err)
	}
	if met.FaultTrips.Load() != 1 || trips != 1 {
		t.Errorf("trips: counter=%d events=%d, want 1/1", met.FaultTrips.Load(), trips)
	}
}

// TestFaultStoreTornWrite checks the torn-write kind: the first
// TornBytes bytes reach the inner store, the rest are zeroed, and the
// op still reports the injected error and counts a trip.
func TestFaultStoreTornWrite(t *testing.T) {
	inner := NewMemStore()
	fs := NewFaultStore(inner)
	fs.Kind = FaultTornWrite
	fs.TornBytes = 100
	met := obs.New()
	fs.SetMetrics(met)
	id, _ := fs.Allocate()
	buf := make([]byte, PageSize)
	for i := range buf {
		buf[i] = 0xAB
	}
	fs.Arm(1)
	if err := fs.WritePage(id, buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write = %v, want injected", err)
	}
	if met.FaultTrips.Load() != 1 {
		t.Fatalf("trips = %d, want 1", met.FaultTrips.Load())
	}
	got := make([]byte, PageSize)
	if err := inner.ReadPage(id, got); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if got[i] != 0xAB {
			t.Fatalf("byte %d = %#x, want 0xAB (prefix must persist)", i, got[i])
		}
	}
	for i := 100; i < PageSize; i++ {
		if got[i] != 0 {
			t.Fatalf("byte %d = %#x, want 0 (suffix must be torn off)", i, got[i])
		}
	}
	// TornBytes beyond the page is clamped: the whole write persists
	// but the error still fires.
	fs.TornBytes = PageSize + 99
	fs.Arm(1)
	if err := fs.WritePage(id, buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("clamped torn write = %v, want injected", err)
	}
	if err := inner.ReadPage(id, got); err != nil {
		t.Fatal(err)
	}
	if got[PageSize-1] != 0xAB {
		t.Fatal("clamped torn write lost the tail")
	}
}

// TestFaultStoreTornWriteFileStore: over a FileStore the tear is
// injected below the checksum layer, so the slot's stored CRC genuinely
// mismatches its contents afterwards — the on-disk state a real torn
// write leaves, which reads and the scrub must refuse.
func TestFaultStoreTornWriteFileStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.rexp")
	inner, err := CreateFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer inner.Close()
	id, err := inner.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	old := make([]byte, PageSize)
	for i := range old {
		old[i] = 0x11
	}
	if err := inner.WritePage(id, old); err != nil {
		t.Fatal(err)
	}

	fs := NewFaultStore(inner)
	fs.Kind = FaultTornWrite
	fs.TornBytes = 512
	fs.Arm(1)
	buf := make([]byte, PageSize)
	for i := range buf {
		buf[i] = 0xAB
	}
	if err := fs.WritePage(id, buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write = %v, want injected", err)
	}
	if err := inner.VerifyPage(id); !errors.Is(err, ErrChecksum) {
		t.Fatalf("torn slot verifies (%v), want %v", err, ErrChecksum)
	}
	got := make([]byte, PageSize)
	if err := inner.ReadPage(id, got); !errors.Is(err, ErrChecksum) {
		t.Fatalf("reading the torn slot = %v, want %v", err, ErrChecksum)
	}
	// A full rewrite heals the slot.
	fs.Disarm()
	if err := fs.WritePage(id, buf); err != nil {
		t.Fatal(err)
	}
	if err := inner.VerifyPage(id); err != nil {
		t.Fatalf("rewritten slot fails verification: %v", err)
	}
}

// TestFaultStoreSyncFail checks the sync fault: disarmed or without
// FailSyncs the call forwards to the inner store, armed with FailSyncs
// it trips.
func TestFaultStoreSyncFail(t *testing.T) {
	fs := NewFaultStore(NewMemStore())
	if err := fs.Sync(); err != nil {
		t.Fatalf("sync on MemStore inner: %v", err)
	}
	fs.Arm(1)
	if err := fs.Sync(); err != nil {
		t.Fatalf("sync without FailSyncs tripped: %v", err)
	}
	fs.Disarm()
	fs.FailSyncs = true
	fs.Arm(1)
	if err := fs.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync = %v, want injected", err)
	}
}
