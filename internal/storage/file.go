package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"

	"rexptree/internal/obs"
)

// FileStore is a Store backed by a single file.  The file starts with
// a superblock holding the format version, the page count and the head
// of the free-page chain; user pages follow.  Free pages are chained
// through their first four bytes.
//
// Two on-disk formats are supported:
//
//   - Version 1 (legacy): bare 4 KiB pages, superblock rewritten only
//     on Close.  A crash leaves the superblock stale, so v1 files give
//     no durability guarantees; they are still opened read/write for
//     backward compatibility (and can be migrated to v2 in one shot by
//     rebuilding the index with rexpreshard).
//   - Version 2: every page carries an 8-byte header with a CRC32C
//     checksum of its contents, and the superblock carries its own
//     checksum plus a dirty flag.  The flag is raised by MarkDirty
//     before a write-ahead-logged update stream begins and cleared by
//     a clean Close, so recovery can detect an unclean shutdown.
//
// New files are always created as version 2.
type FileStore struct {
	f        *os.File
	path     string
	version  int
	numPages int // user pages ever allocated (including freed)
	live     int
	readOnly bool
	dirty    bool // v2 superblock dirty flag

	// The free list is kept in memory as a stack (freeOld reusable,
	// freeNew quarantined while deferFrees is set) and materialized as
	// the on-disk chain by Sync and Close.
	freedSet   map[PageID]bool
	freeOld    []PageID
	freeNew    []PageID
	deferFrees bool

	met *obs.Metrics
}

const (
	fileMagic   = 0x52455850 // "REXP": version 1, bare pages
	fileMagicV2 = 0x51455850 // "REXQ": version 2, checksummed pages

	// pageHdrSize is the per-page header of the v2 format: CRC32C of
	// the page contents plus four reserved bytes.  The logical page
	// stays PageSize bytes; only the on-disk slot grows.
	pageHdrSize = 8
	slotSizeV2  = PageSize + pageHdrSize

	superDirtyOff = 16
	superCRCOff   = 20
)

// castagnoli is the CRC32C polynomial table (iSCSI / ext4 / InnoDB).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrReadOnly is returned by the mutating Store methods of a store
// opened with OpenFileStoreReadOnly.
var ErrReadOnly = errors.New("storage: store is read-only")

// ErrChecksum is returned when a page's stored CRC32C does not match
// its contents — the page was torn by a crash or corrupted at rest.
var ErrChecksum = errors.New("storage: page checksum mismatch")

// CreateFileStore creates (truncating) a file-backed store at path in
// the current (checksummed) format.
func CreateFileStore(path string) (*FileStore, error) {
	return createFileStore(path, 2)
}

// createFileStore creates a store of the given format version.  v1 is
// reachable only from tests that exercise the legacy open path.
func createFileStore(path string, version int) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	s := &FileStore{f: f, path: path, version: version, freedSet: map[PageID]bool{}}
	if err := s.writeSuper(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// OpenFileStore opens a store previously written by CreateFileStore
// and cleanly closed (either format version).
func OpenFileStore(path string) (*FileStore, error) {
	return openFileStore(path, false)
}

// OpenFileStoreReadOnly opens a store strictly for reading: the file
// is opened O_RDONLY, every mutating Store method returns ErrReadOnly,
// and Close does not rewrite the superblock — the file's bytes are
// untouched no matter what the caller does.  The offline reshard tool
// scans source shards through this so a crash mid-scan cannot perturb
// the original index.
func OpenFileStoreReadOnly(path string) (*FileStore, error) {
	return openFileStore(path, true)
}

func openFileStore(path string, readOnly bool) (*FileStore, error) {
	mode := os.O_RDWR
	if readOnly {
		mode = os.O_RDONLY
	}
	f, err := os.OpenFile(path, mode, 0o644)
	if err != nil {
		return nil, err
	}
	var sb [PageSize]byte
	if _, err := f.ReadAt(sb[:], 0); err != nil {
		f.Close()
		return nil, err
	}
	s := &FileStore{f: f, path: path, freedSet: map[PageID]bool{}, readOnly: readOnly}
	switch binary.LittleEndian.Uint32(sb[0:]) {
	case fileMagic:
		s.version = 1
	case fileMagicV2:
		s.version = 2
		if crc32.Checksum(sb[:superCRCOff], castagnoli) != binary.LittleEndian.Uint32(sb[superCRCOff:]) {
			f.Close()
			return nil, fmt.Errorf("%w: superblock of %s", ErrChecksum, path)
		}
		s.dirty = sb[superDirtyOff] != 0
	default:
		f.Close()
		return nil, fmt.Errorf("storage: %s is not a rexptree page file", path)
	}
	s.numPages = int(binary.LittleEndian.Uint32(sb[4:]))
	freeHead := PageID(binary.LittleEndian.Uint32(sb[8:]))

	// A dirty file's free chain is untrustworthy (the crash interrupted
	// the update stream that would have rewritten it); recovery rebuilds
	// the free list from tree reachability via ResetFreeList instead.
	if !s.dirty {
		var buf [PageSize]byte
		var chain []PageID
		for id := freeHead; id != InvalidPage; {
			if s.freedSet[id] {
				f.Close()
				return nil, fmt.Errorf("storage: %s: free chain loops at page %d", path, id)
			}
			s.freedSet[id] = true
			chain = append(chain, id)
			if err := s.readRaw(id, buf[:]); err != nil {
				f.Close()
				return nil, err
			}
			id = PageID(binary.LittleEndian.Uint32(buf[:]))
		}
		// The chain head is the most recently freed page; keep LIFO
		// reuse order by stacking the chain bottom-up.
		for i := len(chain) - 1; i >= 0; i-- {
			s.freeOld = append(s.freeOld, chain[i])
		}
	}
	s.live = s.numPages - len(s.freedSet)
	return s, nil
}

// SetMetrics attaches an instrument registry so checksum failures are
// counted.
func (s *FileStore) SetMetrics(m *obs.Metrics) { s.met = m }

// Version returns the on-disk format version (1 legacy, 2 checksummed).
func (s *FileStore) Version() int { return s.version }

// Dirty reports whether the superblock's dirty flag is raised — the
// file was part of a write-ahead-logged update stream and has not been
// cleanly closed since.
func (s *FileStore) Dirty() bool { return s.dirty }

// PageCount returns the number of user pages ever allocated, including
// currently free ones.
func (s *FileStore) PageCount() int { return s.numPages }

// SetDeferFrees selects the deferred-free discipline: freed pages are
// quarantined (not reused and their chain links not written) until the
// next Sync.  The write-ahead-logged tree needs this so the on-disk
// state between checkpoints stays exactly the last checkpoint's.
func (s *FileStore) SetDeferFrees(v bool) {
	if !v {
		s.freeOld = append(s.freeOld, s.freeNew...)
		s.freeNew = nil
	}
	s.deferFrees = v
}

// MarkDirty raises the superblock dirty flag and syncs it to disk, so
// a crash at any later point is detectable on reopen.  It is a no-op
// when the flag is already raised.
func (s *FileStore) MarkDirty() error {
	if s.readOnly {
		return ErrReadOnly
	}
	if s.version < 2 {
		return fmt.Errorf("storage: %s: version-1 files have no dirty flag; migrate with rexpreshard", s.path)
	}
	if s.dirty {
		return nil
	}
	s.dirty = true
	if err := s.writeSuper(); err != nil {
		return err
	}
	return s.f.Sync()
}

// SetPageCount extends the store's page count to at least n, so
// recovery can apply checkpoint images of pages allocated after the
// stale superblock was last written.  The file grows lazily.
func (s *FileStore) SetPageCount(n int) {
	if n > s.numPages {
		s.live += n - s.numPages
		s.numPages = n
	}
}

// ResetFreeList replaces the free list: every page not in live is
// considered free.  Recovery calls this after rebuilding the reachable
// set of an uncleanly closed file, whose on-disk chain is stale.
func (s *FileStore) ResetFreeList(live map[PageID]bool) {
	s.freedSet = map[PageID]bool{}
	s.freeOld = s.freeOld[:0]
	s.freeNew = s.freeNew[:0]
	for id := 0; id < s.numPages; id++ {
		if !live[PageID(id)] {
			s.freedSet[PageID(id)] = true
			s.freeOld = append(s.freeOld, PageID(id))
		}
	}
	s.live = s.numPages - len(s.freedSet)
}

func (s *FileStore) writeSuper() error {
	var sb [PageSize]byte
	if s.version < 2 {
		binary.LittleEndian.PutUint32(sb[0:], fileMagic)
	} else {
		binary.LittleEndian.PutUint32(sb[0:], fileMagicV2)
	}
	binary.LittleEndian.PutUint32(sb[4:], uint32(s.numPages))
	binary.LittleEndian.PutUint32(sb[8:], uint32(s.freeHead()))
	if s.version >= 2 {
		if s.dirty {
			sb[superDirtyOff] = 1
		}
		binary.LittleEndian.PutUint32(sb[superCRCOff:], crc32.Checksum(sb[:superCRCOff], castagnoli))
	}
	_, err := s.f.WriteAt(sb[:], 0)
	return err
}

// freeHead returns the id that heads the on-disk free chain written by
// writeChain: the top of the in-memory free stack.
func (s *FileStore) freeHead() PageID {
	if n := len(s.freeNew); n > 0 {
		return s.freeNew[n-1]
	}
	if n := len(s.freeOld); n > 0 {
		return s.freeOld[n-1]
	}
	return InvalidPage
}

// writeChain materializes the in-memory free stack as the on-disk
// chain: each free page's first four bytes link to the next.  Pages
// are rewritten whole so v2 checksums stay valid.
func (s *FileStore) writeChain() error {
	stack := make([]PageID, 0, len(s.freeOld)+len(s.freeNew))
	stack = append(stack, s.freeOld...)
	stack = append(stack, s.freeNew...)
	var buf [PageSize]byte
	next := InvalidPage
	for _, id := range stack {
		binary.LittleEndian.PutUint32(buf[:], uint32(next))
		if err := s.writeRaw(id, buf[:]); err != nil {
			return err
		}
		next = id
	}
	return nil
}

func (s *FileStore) offset(id PageID) int64 {
	if s.version < 2 {
		return (int64(id) + 1) * PageSize
	}
	return PageSize + int64(id)*slotSizeV2
}

func (s *FileStore) readRaw(id PageID, buf []byte) error {
	if s.version < 2 {
		_, err := s.f.ReadAt(buf[:PageSize], s.offset(id))
		return err
	}
	var slot [slotSizeV2]byte
	if _, err := s.f.ReadAt(slot[:], s.offset(id)); err != nil {
		return err
	}
	want := binary.LittleEndian.Uint32(slot[0:])
	if crc32.Checksum(slot[pageHdrSize:], castagnoli) != want {
		if s.met != nil {
			s.met.ChecksumFailures.Inc()
		}
		return fmt.Errorf("%w: page %d", ErrChecksum, id)
	}
	copy(buf[:PageSize], slot[pageHdrSize:])
	return nil
}

func (s *FileStore) writeRaw(id PageID, buf []byte) error {
	if s.version < 2 {
		_, err := s.f.WriteAt(buf[:PageSize], s.offset(id))
		return err
	}
	var slot [slotSizeV2]byte
	copy(slot[pageHdrSize:], buf[:PageSize])
	binary.LittleEndian.PutUint32(slot[0:], crc32.Checksum(slot[pageHdrSize:], castagnoli))
	_, err := s.f.WriteAt(slot[:], s.offset(id))
	return err
}

// VerifyPage reads the page's slot and checks its checksum, without
// the allocation checks — it works on freed pages too, for the offline
// scrub.  Version-1 pages have no checksum and always verify.
func (s *FileStore) VerifyPage(id PageID) error {
	if int(id) >= s.numPages {
		return fmt.Errorf("%w: %d", ErrPageRange, id)
	}
	if s.version < 2 {
		return nil
	}
	var buf [PageSize]byte
	return s.readRaw(id, buf[:])
}

func (s *FileStore) check(id PageID) error {
	if int(id) >= s.numPages {
		return fmt.Errorf("%w: %d", ErrPageRange, id)
	}
	if s.freedSet[id] {
		return fmt.Errorf("%w: %d", ErrPageFreed, id)
	}
	return nil
}

// ReadPage implements Store.
func (s *FileStore) ReadPage(id PageID, buf []byte) error {
	if err := s.check(id); err != nil {
		return err
	}
	return s.readRaw(id, buf)
}

// WritePage implements Store.
func (s *FileStore) WritePage(id PageID, buf []byte) error {
	if s.readOnly {
		return ErrReadOnly
	}
	if err := s.check(id); err != nil {
		return err
	}
	return s.writeRaw(id, buf)
}

// WritePageTorn persists only the first n bytes of the page's encoded
// on-disk slot — checksum header included — leaving the rest of the
// slot as it was: the state a page write torn by a crash leaves behind,
// below the checksum layer, so the stored CRC genuinely mismatches the
// contents.  Fault injection (FaultTornWrite) is the only intended
// caller.  n is clamped to the slot size; the free check is skipped so
// any allocated slot can be torn.
func (s *FileStore) WritePageTorn(id PageID, buf []byte, n int) error {
	if s.readOnly {
		return ErrReadOnly
	}
	if int(id) >= s.numPages {
		return fmt.Errorf("%w: %d", ErrPageRange, id)
	}
	if n < 0 {
		n = 0
	}
	if s.version < 2 {
		if n > PageSize {
			n = PageSize
		}
		_, err := s.f.WriteAt(buf[:n], s.offset(id))
		return err
	}
	var slot [slotSizeV2]byte
	copy(slot[pageHdrSize:], buf[:PageSize])
	binary.LittleEndian.PutUint32(slot[0:], crc32.Checksum(slot[pageHdrSize:], castagnoli))
	if n > slotSizeV2 {
		n = slotSizeV2
	}
	_, err := s.f.WriteAt(slot[:n], s.offset(id))
	return err
}

// writeImage writes a recovery page image, bypassing the free check:
// the free list of an uncleanly closed file is not known until after
// the images are applied and the reachable set rebuilt.
func (s *FileStore) writeImage(id PageID, buf []byte) error {
	if s.readOnly {
		return ErrReadOnly
	}
	if int(id) >= s.numPages {
		return fmt.Errorf("%w: %d", ErrPageRange, id)
	}
	return s.writeRaw(id, buf)
}

// WriteImage applies a checkpoint page image during recovery.
func (s *FileStore) WriteImage(id PageID, buf []byte) error { return s.writeImage(id, buf) }

// Allocate implements Store.
func (s *FileStore) Allocate() (PageID, error) {
	if s.readOnly {
		return InvalidPage, ErrReadOnly
	}
	var zero [PageSize]byte
	if n := len(s.freeOld); n > 0 {
		id := s.freeOld[n-1]
		if err := s.writeRaw(id, zero[:]); err != nil {
			return InvalidPage, err
		}
		s.freeOld = s.freeOld[:n-1]
		delete(s.freedSet, id)
		s.live++
		return id, nil
	}
	id := PageID(s.numPages)
	if err := s.writeRaw(id, zero[:]); err != nil {
		return InvalidPage, err
	}
	s.numPages++
	s.live++
	return id, nil
}

// Free implements Store.  The page is dropped from use immediately;
// its on-disk chain link is written by the next Sync or Close.  Under
// SetDeferFrees the page is additionally quarantined from reuse until
// that Sync, so the contents it held at the last checkpoint survive
// for recovery.
func (s *FileStore) Free(id PageID) error {
	if s.readOnly {
		return ErrReadOnly
	}
	if err := s.check(id); err != nil {
		return err
	}
	s.freedSet[id] = true
	if s.deferFrees {
		s.freeNew = append(s.freeNew, id)
	} else {
		s.freeOld = append(s.freeOld, id)
	}
	s.live--
	return nil
}

// Len implements Store.
func (s *FileStore) Len() int { return s.live }

// Sync materializes the free chain, writes the superblock (keeping the
// current dirty flag) and fsyncs the file.  Quarantined frees become
// reusable afterwards.
func (s *FileStore) Sync() error {
	if s.readOnly {
		return ErrReadOnly
	}
	if err := s.writeChain(); err != nil {
		return err
	}
	if err := s.writeSuper(); err != nil {
		return err
	}
	if err := s.f.Sync(); err != nil {
		return err
	}
	s.freeOld = append(s.freeOld, s.freeNew...)
	s.freeNew = nil
	return nil
}

// Close clears the dirty flag, persists the free chain and superblock,
// fsyncs and closes the file.  Any error is reported; the file handle
// is closed regardless (read-only stores close without writing).
func (s *FileStore) Close() error {
	if s.readOnly {
		return s.f.Close()
	}
	s.dirty = false
	err := s.Sync()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// CloseKeepDirty closes the file handle without touching the
// superblock, leaving the dirty flag as it stands on disk.  The
// write-ahead-logged tree uses it when a final checkpoint failed:
// stamping the file clean would disable the recovery the next open
// must run.
func (s *FileStore) CloseKeepDirty() error { return s.f.Close() }
