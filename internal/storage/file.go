package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
)

// FileStore is a Store backed by a single file.  Page 0 of the file is
// a superblock holding the page count and the head of the free-page
// chain; user pages start at file page 1.  Free pages are chained
// through their first four bytes.  The superblock is rewritten on
// Close, so a cleanly closed file can be reopened with OpenFileStore.
type FileStore struct {
	f        *os.File
	numPages int // user pages ever allocated (including freed)
	freeHead PageID
	freedSet map[PageID]bool
	live     int
	readOnly bool
}

const fileMagic = 0x52455850 // "REXP"

// ErrReadOnly is returned by the mutating Store methods of a store
// opened with OpenFileStoreReadOnly.
var ErrReadOnly = errors.New("storage: store is read-only")

// CreateFileStore creates (truncating) a file-backed store at path.
func CreateFileStore(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	s := &FileStore{f: f, freeHead: InvalidPage, freedSet: map[PageID]bool{}}
	if err := s.writeSuper(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// OpenFileStore opens a store previously written by CreateFileStore
// and cleanly closed.
func OpenFileStore(path string) (*FileStore, error) {
	return openFileStore(path, false)
}

// OpenFileStoreReadOnly opens a store strictly for reading: the file
// is opened O_RDONLY, every mutating Store method returns ErrReadOnly,
// and Close does not rewrite the superblock — the file's bytes are
// untouched no matter what the caller does.  The offline reshard tool
// scans source shards through this so a crash mid-scan cannot perturb
// the original index.
func OpenFileStoreReadOnly(path string) (*FileStore, error) {
	return openFileStore(path, true)
}

func openFileStore(path string, readOnly bool) (*FileStore, error) {
	mode := os.O_RDWR
	if readOnly {
		mode = os.O_RDONLY
	}
	f, err := os.OpenFile(path, mode, 0o644)
	if err != nil {
		return nil, err
	}
	var sb [PageSize]byte
	if _, err := f.ReadAt(sb[:], 0); err != nil {
		f.Close()
		return nil, err
	}
	if binary.LittleEndian.Uint32(sb[0:]) != fileMagic {
		f.Close()
		return nil, fmt.Errorf("storage: %s is not a rexptree page file", path)
	}
	s := &FileStore{
		f:        f,
		numPages: int(binary.LittleEndian.Uint32(sb[4:])),
		freeHead: PageID(binary.LittleEndian.Uint32(sb[8:])),
		freedSet: map[PageID]bool{},
		readOnly: readOnly,
	}
	// Rebuild the freed set by walking the chain.
	var buf [PageSize]byte
	for id := s.freeHead; id != InvalidPage; {
		s.freedSet[id] = true
		if err := s.readRaw(id, buf[:]); err != nil {
			f.Close()
			return nil, err
		}
		id = PageID(binary.LittleEndian.Uint32(buf[:]))
	}
	s.live = s.numPages - len(s.freedSet)
	return s, nil
}

func (s *FileStore) writeSuper() error {
	var sb [PageSize]byte
	binary.LittleEndian.PutUint32(sb[0:], fileMagic)
	binary.LittleEndian.PutUint32(sb[4:], uint32(s.numPages))
	binary.LittleEndian.PutUint32(sb[8:], uint32(s.freeHead))
	_, err := s.f.WriteAt(sb[:], 0)
	return err
}

func (s *FileStore) offset(id PageID) int64 { return (int64(id) + 1) * PageSize }

func (s *FileStore) readRaw(id PageID, buf []byte) error {
	_, err := s.f.ReadAt(buf[:PageSize], s.offset(id))
	return err
}

func (s *FileStore) check(id PageID) error {
	if int(id) >= s.numPages {
		return fmt.Errorf("%w: %d", ErrPageRange, id)
	}
	if s.freedSet[id] {
		return fmt.Errorf("%w: %d", ErrPageFreed, id)
	}
	return nil
}

// ReadPage implements Store.
func (s *FileStore) ReadPage(id PageID, buf []byte) error {
	if err := s.check(id); err != nil {
		return err
	}
	return s.readRaw(id, buf)
}

// WritePage implements Store.
func (s *FileStore) WritePage(id PageID, buf []byte) error {
	if s.readOnly {
		return ErrReadOnly
	}
	if err := s.check(id); err != nil {
		return err
	}
	_, err := s.f.WriteAt(buf[:PageSize], s.offset(id))
	return err
}

// Allocate implements Store.
func (s *FileStore) Allocate() (PageID, error) {
	if s.readOnly {
		return InvalidPage, ErrReadOnly
	}
	var zero [PageSize]byte
	s.live++
	if s.freeHead != InvalidPage {
		id := s.freeHead
		var buf [PageSize]byte
		if err := s.readRaw(id, buf[:]); err != nil {
			return InvalidPage, err
		}
		s.freeHead = PageID(binary.LittleEndian.Uint32(buf[:]))
		delete(s.freedSet, id)
		return id, s.WritePage(id, zero[:])
	}
	id := PageID(s.numPages)
	s.numPages++
	if _, err := s.f.WriteAt(zero[:], s.offset(id)); err != nil {
		s.numPages--
		s.live--
		return InvalidPage, err
	}
	return id, nil
}

// Free implements Store.
func (s *FileStore) Free(id PageID) error {
	if s.readOnly {
		return ErrReadOnly
	}
	if err := s.check(id); err != nil {
		return err
	}
	var buf [PageSize]byte
	binary.LittleEndian.PutUint32(buf[:], uint32(s.freeHead))
	if _, err := s.f.WriteAt(buf[:], s.offset(id)); err != nil {
		return err
	}
	s.freeHead = id
	s.freedSet[id] = true
	s.live--
	return nil
}

// Len implements Store.
func (s *FileStore) Len() int { return s.live }

// Close writes the superblock and closes the file (read-only stores
// skip the superblock write).
func (s *FileStore) Close() error {
	if s.readOnly {
		return s.f.Close()
	}
	if err := s.writeSuper(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}
