// Package storage provides the paged-storage substrate underneath the
// index structures: fixed-size pages, an allocator with a free list,
// in-memory and file-backed page stores, and an LRU buffer pool with
// pinning, write-back of dirty pages, and I/O accounting.
//
// It stands in for the adapted GiST class library used in the paper's
// implementation.  The experiments' metric — I/O operations per index
// operation — is the number of page reads and writes that reach the
// Store through the buffer pool.
package storage

import (
	"errors"
	"fmt"
)

// PageSize is the size of a disk page and of a tree node, 4 KiB as in
// the paper (§5.1).
const PageSize = 4096

// PageID identifies a page within a Store.
type PageID uint32

// InvalidPage is the nil page identifier.
const InvalidPage PageID = ^PageID(0)

// ErrPageFreed is returned when reading or writing a page that has
// been released back to the allocator.
var ErrPageFreed = errors.New("storage: page is freed")

// ErrPageRange is returned for page ids that were never allocated.
var ErrPageRange = errors.New("storage: page id out of range")

// Store is raw page storage: a flat array of PageSize pages with an
// allocator.  Implementations are not safe for concurrent use; the
// index serializes access.
type Store interface {
	// ReadPage copies the page's contents into buf (len PageSize).
	ReadPage(id PageID, buf []byte) error
	// WritePage stores buf (len PageSize) as the page's contents.
	WritePage(id PageID, buf []byte) error
	// Allocate returns a zeroed, writable page.
	Allocate() (PageID, error)
	// Free releases the page for reuse.
	Free(id PageID) error
	// Len returns the number of live (allocated, not freed) pages —
	// the index-size metric of the experiments.
	Len() int
	// Close releases underlying resources.
	Close() error
}

// Syncer is implemented by stores that can force buffered state to
// stable storage (a FileStore fsync; wrappers forward it).
type Syncer interface {
	Sync() error
}

// SyncStore syncs s when it (or anything it wraps) supports it, and is
// a no-op otherwise — a MemStore has nothing to sync.
func SyncStore(s Store) error {
	if sy, ok := s.(Syncer); ok {
		return sy.Sync()
	}
	return nil
}

// MemStore is an in-memory Store.  The zero value is ready to use.
type MemStore struct {
	pages [][]byte
	freed []PageID
	live  int
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{} }

func (s *MemStore) check(id PageID) error {
	if int(id) >= len(s.pages) {
		return fmt.Errorf("%w: %d", ErrPageRange, id)
	}
	if s.pages[id] == nil {
		return fmt.Errorf("%w: %d", ErrPageFreed, id)
	}
	return nil
}

// ReadPage implements Store.
func (s *MemStore) ReadPage(id PageID, buf []byte) error {
	if err := s.check(id); err != nil {
		return err
	}
	copy(buf, s.pages[id])
	return nil
}

// WritePage implements Store.
func (s *MemStore) WritePage(id PageID, buf []byte) error {
	if err := s.check(id); err != nil {
		return err
	}
	copy(s.pages[id], buf)
	return nil
}

// Allocate implements Store.
func (s *MemStore) Allocate() (PageID, error) {
	s.live++
	if n := len(s.freed); n > 0 {
		id := s.freed[n-1]
		s.freed = s.freed[:n-1]
		s.pages[id] = make([]byte, PageSize)
		return id, nil
	}
	s.pages = append(s.pages, make([]byte, PageSize))
	return PageID(len(s.pages) - 1), nil
}

// Free implements Store.
func (s *MemStore) Free(id PageID) error {
	if err := s.check(id); err != nil {
		return err
	}
	s.pages[id] = nil
	s.freed = append(s.freed, id)
	s.live--
	return nil
}

// Len implements Store.
func (s *MemStore) Len() int { return s.live }

// Close implements Store.
func (s *MemStore) Close() error {
	s.pages, s.freed, s.live = nil, nil, 0
	return nil
}
