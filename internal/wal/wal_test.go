package wal

import (
	"os"
	"path/filepath"
	"testing"

	"rexptree/internal/obs"
	"rexptree/internal/storage"
)

func testUpdate(id uint32) Update {
	return Update{
		ID: id, Now: 10.5, Time: 10.25, Expires: 70,
		Pos: [3]float64{1.5, -2.25, 0}, Vel: [3]float64{0.5, 0.125, 0},
	}
}

// appendAll appends the given payloads and syncs.
func appendAll(t *testing.T, w *Writer, payloads ...[]byte) {
	t.Helper()
	for _, p := range payloads {
		if err := w.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	img := make([]byte, storage.PageSize)
	for i := range img {
		img[i] = byte(i)
	}
	page := append(append([]byte{byte(CkptPage)}, 7, 0, 0, 0), img...)
	appendAll(t, w,
		EncodeUpdate(nil, testUpdate(42)),
		EncodeDelete(nil, Delete{ID: 7, Now: 11}),
		[]byte{byte(CkptBegin)},
		page,
		[]byte{byte(CkptCommit), 9, 0, 0, 0},
	)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	var recs []Record
	if err := Scan(path, func(r Record) error {
		if r.Kind == CkptPage {
			d := make([]byte, len(r.Data))
			copy(d, r.Data)
			r.Data = d
		}
		recs = append(recs, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("scanned %d records, want 5", len(recs))
	}
	if recs[0].Kind != RecUpdate || recs[0].Update != testUpdate(42) {
		t.Errorf("update record mismatch: %+v", recs[0].Update)
	}
	if recs[1].Kind != RecDelete || recs[1].Delete != (Delete{ID: 7, Now: 11}) {
		t.Errorf("delete record mismatch: %+v", recs[1].Delete)
	}
	if recs[3].Kind != CkptPage || recs[3].Page != 7 || recs[3].Data[100] != img[100] {
		t.Errorf("ckpt-page record mismatch")
	}
	if recs[4].Kind != CkptCommit || recs[4].Pages != 9 {
		t.Errorf("ckpt-commit record mismatch: %+v", recs[4])
	}
}

func TestWALTornTailIgnored(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, EncodeUpdate(nil, testUpdate(1)), EncodeUpdate(nil, testUpdate(2)))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	countRecords := func(data []byte) int {
		n := 0
		if err := ScanBytes(data, func(Record) error { n++; return nil }); err != nil {
			t.Fatal(err)
		}
		return n
	}
	if n := countRecords(whole); n != 2 {
		t.Fatalf("clean log scans %d records, want 2", n)
	}
	// Every strict prefix that cuts into the second frame must yield
	// exactly the first record; cutting into the first yields none.
	first := frameHdrSize + updateSize
	for cut := 1; cut < len(whole); cut++ {
		want := 0
		if cut >= first {
			want = 1
		}
		if cut == len(whole) {
			want = 2
		}
		if n := countRecords(whole[:cut]); n != want {
			t.Fatalf("prefix %d scans %d records, want %d", cut, n, want)
		}
	}
	// A flipped bit anywhere in the second frame drops it (and only it).
	for off := first; off < len(whole); off++ {
		mut := append([]byte(nil), whole...)
		mut[off] ^= 0x40
		if n := countRecords(mut); n != 1 {
			t.Fatalf("bit flip at %d scans %d records, want 1", off, n)
		}
	}
}

func TestWALReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	m := obs.New()
	w.SetMetrics(m)
	appendAll(t, w, EncodeUpdate(nil, testUpdate(1)))
	if w.Size() == 0 {
		t.Fatal("size should grow on append")
	}
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	if w.Size() != 0 {
		t.Fatalf("size after reset = %d, want 0", w.Size())
	}
	appendAll(t, w, EncodeDelete(nil, Delete{ID: 3, Now: 1}))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var recs []Record
	if err := Scan(path, func(r Record) error { recs = append(recs, r); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Kind != RecDelete {
		t.Fatalf("after reset the log should hold only the new record, got %+v", recs)
	}
	if m.WALFsyncs.Load() < 2 {
		t.Errorf("fsyncs = %d, want >= 2", m.WALFsyncs.Load())
	}
}

func TestAnalyzeSplitsAtLastCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	img := make([]byte, storage.PageSize)
	page := func(id byte) []byte {
		return append(append([]byte{byte(CkptPage)}, id, 0, 0, 0), img...)
	}
	appendAll(t, w,
		EncodeUpdate(nil, testUpdate(1)), // before the checkpoint: dropped
		[]byte{byte(CkptBegin)},
		page(0),
		page(3),
		[]byte{byte(CkptCommit), 5, 0, 0, 0},
		EncodeUpdate(nil, testUpdate(2)), // after: replayed
		EncodeDelete(nil, Delete{ID: 9, Now: 12}),
	)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(path)
	if err != nil {
		t.Fatal(err)
	}
	if a.Records != 7 {
		t.Errorf("records = %d, want 7", a.Records)
	}
	if len(a.Images) != 2 || a.Pages != 5 {
		t.Errorf("images = %d pages=%d, want 2 images pages=5", len(a.Images), a.Pages)
	}
	if len(a.Tail) != 2 || a.Tail[0].Update.ID != 2 || a.Tail[1].Delete.ID != 9 {
		t.Errorf("tail mismatch: %+v", a.Tail)
	}
}

func TestAnalyzeIncompleteCheckpointIgnored(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	img := make([]byte, storage.PageSize)
	appendAll(t, w,
		EncodeUpdate(nil, testUpdate(1)),
		[]byte{byte(CkptBegin)},
		append(append([]byte{byte(CkptPage)}, 0, 0, 0, 0), img...),
		// no CkptCommit: crashed mid-checkpoint
	)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(path)
	if err != nil {
		t.Fatal(err)
	}
	if a.Images != nil {
		t.Error("incomplete checkpoint must yield no images")
	}
	if len(a.Tail) != 1 || a.Tail[0].Update.ID != 1 {
		t.Errorf("tail should hold the pre-checkpoint logical records, got %+v", a.Tail)
	}
}

// TestAnalyzeReportsTornTail: Analyze must report where the valid
// frame prefix ends and that garbage follows it, TruncateTail must cut
// exactly there, and frames appended after the cut must be reachable
// by a later scan — the property recovery's checkpoint depends on.
func TestAnalyzeReportsTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, EncodeUpdate(nil, testUpdate(1)), EncodeUpdate(nil, testUpdate(2)))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(path)
	if err != nil {
		t.Fatal(err)
	}
	if a.Torn || a.ValidPrefix != int64(len(clean)) {
		t.Fatalf("clean log: torn=%v prefix=%d, want false/%d", a.Torn, a.ValidPrefix, len(clean))
	}

	garbage := append(append([]byte(nil), clean...), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01, 0x02, 0x03)
	if err := os.WriteFile(path, garbage, 0o644); err != nil {
		t.Fatal(err)
	}
	a, err = Analyze(path)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Torn || a.ValidPrefix != int64(len(clean)) || a.Records != 2 {
		t.Fatalf("torn log: torn=%v prefix=%d records=%d, want true/%d/2", a.Torn, a.ValidPrefix, a.Records, len(clean))
	}

	if err := TruncateTail(path, a.ValidPrefix); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != int64(len(clean)) {
		t.Fatalf("truncated log is %d bytes, want %d", st.Size(), len(clean))
	}

	// Frames appended after the cut follow the valid prefix and scan.
	w2, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w2, EncodeDelete(nil, Delete{ID: 9, Now: 3}))
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	a, err = Analyze(path)
	if err != nil {
		t.Fatal(err)
	}
	if a.Torn || a.Records != 3 {
		t.Fatalf("after truncate+append: torn=%v records=%d, want false/3", a.Torn, a.Records)
	}
}

// TestWriterUnwind: dropping the bytes appended after an offset must
// remove exactly those frames, leave earlier ones intact, and let later
// appends continue from the cut.
func TestWriterUnwind(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, EncodeUpdate(nil, testUpdate(1)))
	mark := w.Size()
	if err := w.Append(EncodeUpdate(nil, testUpdate(2))); err != nil {
		t.Fatal(err)
	}
	if err := w.Unwind(mark); err != nil {
		t.Fatal(err)
	}
	if w.Size() != mark {
		t.Fatalf("size after unwind = %d, want %d", w.Size(), mark)
	}
	appendAll(t, w, EncodeDelete(nil, Delete{ID: 3, Now: 2}))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var recs []Record
	if err := Scan(path, func(r Record) error { recs = append(recs, r); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Update.ID != 1 || recs[1].Kind != RecDelete {
		t.Fatalf("after unwind the log holds %+v, want update(1) + delete", recs)
	}
}

func TestWriterHookAborts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	boom := os.ErrClosed
	w.Hook = func(event string) error {
		if event == "append" {
			return boom
		}
		return nil
	}
	if err := w.Append(EncodeUpdate(nil, testUpdate(1))); err != boom {
		t.Fatalf("append with failing hook = %v, want %v", err, boom)
	}
	if w.Size() != 0 {
		t.Fatal("aborted append must not grow the log")
	}
}

func TestCreatePreservesExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, EncodeUpdate(nil, testUpdate(1)))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if w2.Size() == 0 {
		t.Fatal("reopen must report the existing bytes")
	}
	appendAll(t, w2, EncodeUpdate(nil, testUpdate(2)))
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := Scan(path, func(Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("scanned %d records, want 2 (append must not truncate)", n)
	}
}
