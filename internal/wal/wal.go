// Package wal implements the per-tree append-only write-ahead log of
// the durability subsystem.  The log carries two things:
//
//   - Logical redo records (RecUpdate, RecDelete): each public mutation
//     is appended before it is applied to the buffered tree, so a crash
//     can replay the operations since the last checkpoint.
//   - Checkpoint page images (CkptBegin, CkptPage..., CkptCommit): when
//     the tree checkpoints, every dirty buffer page is first imaged to
//     the log and fsynced, and only then written to the page file —
//     a double-write that makes a torn page-file write recoverable by
//     re-applying the images.
//
// Frames are length-prefixed and CRC32C-checksummed; a torn tail (a
// short, bit-flipped or half-written last frame) terminates the scan
// cleanly instead of corrupting replay, and Analyze reports it along
// with the valid-prefix offset so recovery can cut it off before
// appending (TruncateTail).  After a successful checkpoint the log is
// truncated to empty.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"time"

	"rexptree/internal/obs"
	"rexptree/internal/storage"
)

// Kind identifies a WAL record type.
type Kind uint8

// The record kinds.  Values are persisted on disk; append only.
const (
	// RecUpdate logs one object report: the public-point fields plus
	// the tree clock at which the update was applied.
	RecUpdate Kind = 1
	// RecDelete logs the removal of one object.
	RecDelete Kind = 2
	// CkptBegin opens a checkpoint image set.
	CkptBegin Kind = 3
	// CkptPage carries the image of one page (id + PageSize bytes).
	CkptPage Kind = 4
	// CkptCommit closes a checkpoint image set and records the page
	// count of the imaged state.
	CkptCommit Kind = 5
)

const (
	frameHdrSize = 8 // [len u32][crc32c u32]

	// maxPayload bounds a frame payload: a checkpoint page image plus
	// its header is the largest legitimate record.  A corrupt length
	// prefix beyond this terminates the scan.
	maxPayload = storage.PageSize + 64
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Update is the decoded payload of a RecUpdate record.  Pos and Vel
// are the public (report-time) coordinates; Now is the tree clock at
// which the update was applied.
type Update struct {
	ID      uint32
	Now     float64
	Time    float64
	Expires float64
	Pos     [3]float64
	Vel     [3]float64
}

// Delete is the decoded payload of a RecDelete record.
type Delete struct {
	ID  uint32
	Now float64
}

// Record is one decoded WAL record.  Exactly the fields for its Kind
// are meaningful.
type Record struct {
	Kind   Kind
	Update Update         // RecUpdate
	Delete Delete         // RecDelete
	Page   storage.PageID // CkptPage
	Data   []byte         // CkptPage image (len PageSize, aliases scan buffer)
	Pages  int            // CkptCommit: page count of the imaged state
}

// EncodeUpdate appends the RecUpdate payload for u to dst.
func EncodeUpdate(dst []byte, u Update) []byte {
	dst = append(dst, byte(RecUpdate))
	dst = binary.LittleEndian.AppendUint32(dst, u.ID)
	for _, f := range [...]float64{u.Now, u.Time, u.Expires,
		u.Pos[0], u.Pos[1], u.Pos[2], u.Vel[0], u.Vel[1], u.Vel[2]} {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
	}
	return dst
}

// EncodeDelete appends the RecDelete payload for d to dst.
func EncodeDelete(dst []byte, d Delete) []byte {
	dst = append(dst, byte(RecDelete))
	dst = binary.LittleEndian.AppendUint32(dst, d.ID)
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(d.Now))
}

// encode sizes of the fixed payloads, including the kind byte.
const (
	updateSize     = 1 + 4 + 9*8
	deleteSize     = 1 + 4 + 8
	ckptPageSize   = 1 + 4 + storage.PageSize
	ckptCommitSize = 1 + 4
)

// DecodeRecord decodes one logical record payload — the bytes
// EncodeUpdate/EncodeDelete produce, as scanned from a log or carried
// on a replication feed — into rec.
func DecodeRecord(p []byte, rec *Record) error { return decodePayload(p, rec) }

// decodePayload decodes one frame payload into rec.
func decodePayload(p []byte, rec *Record) error {
	if len(p) == 0 {
		return errors.New("wal: empty payload")
	}
	rec.Kind = Kind(p[0])
	switch rec.Kind {
	case RecUpdate:
		if len(p) != updateSize {
			return fmt.Errorf("wal: update payload is %d bytes, want %d", len(p), updateSize)
		}
		u := &rec.Update
		u.ID = binary.LittleEndian.Uint32(p[1:])
		fs := p[5:]
		for i, dst := range [...]*float64{&u.Now, &u.Time, &u.Expires,
			&u.Pos[0], &u.Pos[1], &u.Pos[2], &u.Vel[0], &u.Vel[1], &u.Vel[2]} {
			*dst = math.Float64frombits(binary.LittleEndian.Uint64(fs[i*8:]))
		}
	case RecDelete:
		if len(p) != deleteSize {
			return fmt.Errorf("wal: delete payload is %d bytes, want %d", len(p), deleteSize)
		}
		rec.Delete.ID = binary.LittleEndian.Uint32(p[1:])
		rec.Delete.Now = math.Float64frombits(binary.LittleEndian.Uint64(p[5:]))
	case CkptBegin:
		if len(p) != 1 {
			return fmt.Errorf("wal: ckpt-begin payload is %d bytes, want 1", len(p))
		}
	case CkptPage:
		if len(p) != ckptPageSize {
			return fmt.Errorf("wal: ckpt-page payload is %d bytes, want %d", len(p), ckptPageSize)
		}
		rec.Page = storage.PageID(binary.LittleEndian.Uint32(p[1:]))
		rec.Data = p[5:]
	case CkptCommit:
		if len(p) != ckptCommitSize {
			return fmt.Errorf("wal: ckpt-commit payload is %d bytes, want %d", len(p), ckptCommitSize)
		}
		rec.Pages = int(binary.LittleEndian.Uint32(p[1:]))
	default:
		return fmt.Errorf("wal: unknown record kind %d", rec.Kind)
	}
	return nil
}

// Writer appends framed records to a WAL file through a buffered
// writer.  It is not safe for concurrent use; the tree's exclusive
// lock serializes appends.
type Writer struct {
	f    *os.File
	bw   *bufio.Writer
	size int64 // bytes appended since the last Reset (flushed or not)
	met  *obs.Metrics

	// Hook, when non-nil, is called at WAL lifecycle points ("append",
	// "flush", "sync", "ckpt-page", "reset") before the step runs; a
	// non-nil return aborts the step with that error.  Crash tests use
	// it to stop the world at exact injection points.
	Hook func(event string) error
}

// Create opens (creating or truncating to its current content) the WAL
// file at path for appending.  An existing non-empty file is preserved
// — the caller decides whether to scan or reset it.
func Create(path string) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	return &Writer{f: f, bw: bufio.NewWriterSize(f, 1<<16), size: st.Size()}, nil
}

// SetMetrics attaches an instrument registry.
func (w *Writer) SetMetrics(m *obs.Metrics) { w.met = m }

// Size returns the log's current size in bytes, counting buffered
// appends that have not reached the file yet.
func (w *Writer) Size() int64 { return w.size }

func (w *Writer) hook(event string) error {
	if w.Hook == nil {
		return nil
	}
	return w.Hook(event)
}

// Append frames the payload and appends it to the buffered log.  The
// bytes are not durable until Flush (into the OS) and Sync (onto the
// device).
func (w *Writer) Append(payload []byte) error {
	if err := w.hook("append"); err != nil {
		return err
	}
	var start time.Time
	if w.met != nil {
		start = time.Now()
	}
	var hdr [frameHdrSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, castagnoli))
	if _, err := w.bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.bw.Write(payload); err != nil {
		return err
	}
	w.size += int64(frameHdrSize + len(payload))
	if w.met != nil {
		w.met.WALBytes.Add(uint64(frameHdrSize + len(payload)))
		w.met.ObservePhase(obs.PhaseWALAppend, time.Since(start))
	}
	return nil
}

// Flush pushes buffered frames into the OS.
func (w *Writer) Flush() error {
	if err := w.hook("flush"); err != nil {
		return err
	}
	return w.bw.Flush()
}

// Sync flushes and fsyncs the log; after Sync returns, every appended
// frame survives a crash.
func (w *Writer) Sync() error {
	if err := w.bw.Flush(); err != nil {
		return err
	}
	if err := w.hook("sync"); err != nil {
		return err
	}
	var start time.Time
	if w.met != nil {
		start = time.Now()
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	if w.met != nil {
		w.met.WALFsyncs.Inc()
		w.met.ObservePhase(obs.PhaseWALFsync, time.Since(start))
	}
	return nil
}

// Reset truncates the log to empty and fsyncs the truncation — the
// final step of a checkpoint, after the page file holds the imaged
// state.
func (w *Writer) Reset() error {
	if err := w.hook("reset"); err != nil {
		return err
	}
	w.bw.Reset(w.f)
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	var start time.Time
	if w.met != nil {
		start = time.Now()
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	if w.met != nil {
		w.met.WALFsyncs.Inc()
		w.met.ObservePhase(obs.PhaseWALFsync, time.Since(start))
	}
	w.size = 0
	return nil
}

// Unwind flushes the buffer and truncates the log back to off bytes,
// dropping everything appended after that point.  The tree uses it to
// roll back the record of a mutation that failed after its append: the
// record was never acknowledged, so it must not survive to the next
// commit point and be replayed by recovery.
func (w *Writer) Unwind(off int64) error {
	if err := w.bw.Flush(); err != nil {
		return err
	}
	if err := w.f.Truncate(off); err != nil {
		return err
	}
	if _, err := w.f.Seek(off, io.SeekStart); err != nil {
		return err
	}
	w.size = off
	return nil
}

// Close flushes and closes the file without truncating it.
func (w *Writer) Close() error {
	err := w.bw.Flush()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Abort closes the log file WITHOUT flushing buffered frames — the
// on-disk log is exactly what a crash at this instant would leave.
// Crash-simulation tests use it; everything else wants Close.
func (w *Writer) Abort() error { return w.f.Close() }

// Scan reads the log at path and calls fn for each valid record in
// order.  A torn tail (short frame, bad checksum, corrupt length or
// unknown kind) ends the scan without error: everything before it is
// returned, which is exactly the prefix that was durable at the crash.
// A missing file scans as empty.  The Record passed to fn may alias
// the scan buffer; fn must not retain it.
func Scan(path string, fn func(Record) error) error {
	data, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return err
	}
	return ScanBytes(data, fn)
}

// ScanBytes scans an in-memory log image (see Scan).
func ScanBytes(data []byte, fn func(Record) error) error {
	_, _, err := scanFrames(data, fn)
	return err
}

// scanFrames walks the framed records in data, calling fn for each
// valid one.  It returns the byte offset just past the last valid
// frame (the valid prefix) and whether unscannable bytes — a torn tail
// — follow it.
func scanFrames(data []byte, fn func(Record) error) (validEnd int64, torn bool, err error) {
	off := 0
	for off < len(data) {
		if len(data)-off < frameHdrSize {
			return int64(off), true, nil // torn tail: partial header
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		want := binary.LittleEndian.Uint32(data[off+4:])
		if n > maxPayload || len(data)-off-frameHdrSize < n {
			return int64(off), true, nil // torn tail: corrupt length or partial payload
		}
		payload := data[off+frameHdrSize : off+frameHdrSize+n]
		if crc32.Checksum(payload, castagnoli) != want {
			return int64(off), true, nil // torn tail: bit flip or half-written frame
		}
		var rec Record
		if err := decodePayload(payload, &rec); err != nil {
			return int64(off), true, nil // torn tail: undecodable payload
		}
		if err := fn(rec); err != nil {
			return int64(off), false, err
		}
		off += frameHdrSize + n
	}
	return int64(off), false, nil
}

// Analysis summarizes a scanned log for recovery.
type Analysis struct {
	// Records is the count of valid frames of any kind.
	Records int
	// Images holds the page images of the LAST complete checkpoint
	// (CkptBegin..CkptCommit) in the log, keyed by page id; nil when no
	// complete checkpoint is present.
	Images map[storage.PageID][]byte
	// Pages is the CkptCommit page count of that checkpoint (0 if none).
	Pages int
	// Tail holds the logical records (RecUpdate/RecDelete) appended
	// after the last complete checkpoint — or all of them when the log
	// has no complete checkpoint.
	Tail []Record
	// ValidPrefix is the byte offset just past the last valid frame.
	ValidPrefix int64
	// Torn reports that unscannable bytes follow the valid prefix —
	// the log ends in a torn tail, the expected state after a crash
	// mid-append.  Appending past those bytes would make the new frames
	// unreachable; truncate to ValidPrefix first (TruncateTail).
	Torn bool
}

// Analyze scans the log at path and splits it into the last complete
// checkpoint's images and the logical tail to replay, reporting the
// valid prefix and whether a torn tail follows it.  A missing file
// analyzes as empty.
func Analyze(path string) (Analysis, error) {
	var a Analysis
	data, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return a, nil
		}
		return a, err
	}
	var open map[storage.PageID][]byte // images of an unclosed checkpoint
	a.ValidPrefix, a.Torn, err = scanFrames(data, func(rec Record) error {
		a.Records++
		switch rec.Kind {
		case CkptBegin:
			open = make(map[storage.PageID][]byte)
		case CkptPage:
			if open != nil {
				img := make([]byte, len(rec.Data))
				copy(img, rec.Data)
				open[rec.Page] = img
			}
		case CkptCommit:
			if open != nil {
				a.Images = open
				a.Pages = rec.Pages
				a.Tail = a.Tail[:0] // replay restarts after the checkpoint
				open = nil
			}
		case RecUpdate, RecDelete:
			a.Tail = append(a.Tail, rec)
		}
		return nil
	})
	return a, err
}

// TruncateTail cuts the log at path to off bytes and fsyncs the
// truncation.  Recovery uses it to drop a torn tail before attaching a
// writer: frames appended after garbage would be unreachable by every
// later Scan, so a crash during recovery would silently lose the
// recovery checkpoint.
func TruncateTail(path string, off int64) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.Truncate(off); err != nil {
		return err
	}
	return f.Sync()
}
