package wal

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALRoundTrip drives the frame codec with arbitrary inputs in two
// directions: (1) arbitrary bytes treated as a log must scan without
// panicking, and a scan of any prefix must yield a prefix of the full
// scan's records; (2) records built from the fuzzed fields must
// round-trip through Append + Scan exactly, and corrupting the tail
// must only ever drop trailing records, never alter surviving ones.
func FuzzWALRoundTrip(f *testing.F) {
	f.Add([]byte{}, uint32(1), 1.0, 2.0, 3.0, 4.0, 5.0, uint16(0), false)
	f.Add([]byte{0, 0, 0, 0}, uint32(9), -1.0, 0.0, 1e300, -0.5, 2.25, uint16(3), true)
	seed := EncodeUpdate(nil, Update{ID: 5, Now: 1, Time: 1, Expires: 2})
	var frame []byte
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(seed)))
	frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(seed, castagnoli))
	frame = append(frame, seed...)
	f.Add(frame, uint32(77), 0.0, 0.0, 0.0, 0.0, 0.0, uint16(9), false)

	f.Fuzz(func(t *testing.T, raw []byte, id uint32, now, texp, px, vx, dnow float64, cut uint16, flip bool) {
		// Direction 1: arbitrary bytes never panic the scanner, and
		// scanning a prefix yields a prefix of the records.
		count := func(data []byte) int {
			n := 0
			if err := ScanBytes(data, func(Record) error { n++; return nil }); err != nil {
				t.Fatalf("ScanBytes error on arbitrary input: %v", err)
			}
			return n
		}
		full := count(raw)
		if int(cut) < len(raw) {
			if p := count(raw[:cut]); p > full {
				t.Fatalf("prefix scan found %d records, full scan only %d", p, full)
			}
		}

		// Direction 2: encoded records round-trip through a real file.
		u := Update{ID: id, Now: now, Time: now, Expires: texp,
			Pos: [3]float64{px, 0, 0}, Vel: [3]float64{vx, 0, 0}}
		d := Delete{ID: id + 1, Now: dnow}
		path := filepath.Join(t.TempDir(), "f.wal")
		w, err := Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Append(EncodeUpdate(nil, u)); err != nil {
			t.Fatal(err)
		}
		if err := w.Append(EncodeDelete(nil, d)); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		var got []Record
		if err := Scan(path, func(r Record) error { got = append(got, r); return nil }); err != nil {
			t.Fatal(err)
		}
		if len(got) != 2 || got[0].Update != u || got[1].Delete != d {
			t.Fatalf("round trip mismatch: %+v", got)
		}

		// Truncate or flip the tail: the scan must survive and only
		// trailing records may disappear.
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		mut := append([]byte(nil), data...)
		pos := int(cut) % (len(mut) + 1)
		if flip && pos < len(mut) {
			mut[pos] ^= 0x10
		} else {
			mut = mut[:pos]
		}
		n := 0
		if err := ScanBytes(mut, func(r Record) error {
			if n == 0 && r.Kind == RecUpdate && r.Update != u {
				t.Fatalf("surviving record was altered: %+v", r.Update)
			}
			n++
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if n > 2 {
			t.Fatalf("corrupt tail produced %d records from a 2-record log", n)
		}
	})
}
