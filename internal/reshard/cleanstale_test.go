package reshard

import (
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// TestCleanStale exercises the stale-file sweep both reshard retry
// paths rely on: leftovers of dead generations (page files, ".wal" and
// ".tmp" sidecars, an interrupted-commit manifest) must go, while the
// kept generations' files, the live manifest, the base file itself and
// unrelated names must survive.
func TestCleanStale(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "ix")

	stale := []string{
		"ix.g2.s0", "ix.g2.s1", "ix.g2.s0.wal", "ix.g2.s1.tmp",
		"ix.g3.s0", "ix.g3.s0.wal",
		"ix.manifest.reshard",
	}
	kept := []string{
		"ix",        // the base file of a single-tree source
		"ix.s0",     // generation 0 (kept below)
		"ix.s0.wal", // its WAL sidecar
		"ix.s1",
		"ix.manifest", // the live manifest
		"ix.wal",      // single-tree WAL sidecar
		"ix.g2x.s0",   // malformed generation token
		"ix.snapshot", // unrelated sidecar
		"other.g2.s0", // different index
	}
	for _, n := range append(append([]string{}, stale...), kept...) {
		if err := os.WriteFile(filepath.Join(dir, n), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	removed, err := CleanStale(base, 0)
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(removed)
	want := make([]string, len(stale))
	for i, n := range stale {
		want[i] = filepath.Join(dir, n)
	}
	sort.Strings(want)
	if len(removed) != len(want) {
		t.Fatalf("removed %v, want %v", removed, want)
	}
	for i := range want {
		if removed[i] != want[i] {
			t.Fatalf("removed %v, want %v", removed, want)
		}
	}
	for _, n := range kept {
		if _, err := os.Stat(filepath.Join(dir, n)); err != nil {
			t.Fatalf("kept file %s was removed: %v", n, err)
		}
	}

	// Idempotent: a second sweep finds nothing.
	removed, err = CleanStale(base, 0)
	if err != nil || len(removed) != 0 {
		t.Fatalf("second sweep removed %v (err %v), want nothing", removed, err)
	}

	// Keeping several generations protects each of them.
	for _, n := range []string{"ix.g5.s0", "ix.g6.s0", "ix.g7.s0"} {
		if err := os.WriteFile(filepath.Join(dir, n), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	removed, err = CleanStale(base, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Generation 0 is no longer kept: ix.s0, ix.s0.wal and ix.s1 go,
	// along with the unkept ix.g6.s0.
	if len(removed) != 4 {
		t.Fatalf("removed %v, want generation-0 files and ix.g6.s0", removed)
	}
	for _, n := range []string{"ix.g5.s0", "ix.g7.s0"} {
		if _, err := os.Stat(filepath.Join(dir, n)); err != nil {
			t.Fatalf("kept generation file %s was removed: %v", n, err)
		}
	}
}

// TestShardFileGen pins the naming scheme the sweep recognizes.
func TestShardFileGen(t *testing.T) {
	cases := []struct {
		name string
		gen  int
		ok   bool
	}{
		{"ix.s0", 0, true},
		{"ix.s12", 0, true},
		{"ix.s0.wal", 0, true},
		{"ix.s0.tmp", 0, true},
		{"ix.g1.s0", 1, true},
		{"ix.g42.s7.wal", 42, true},
		{"ix.manifest.reshard", -1, true},
		{"ix", 0, false},
		{"ix.manifest", 0, false},
		{"ix.wal", 0, false},
		{"ix.g0.s0", 0, false}, // generation 0 never carries a g prefix
		{"ix.gx.s0", 0, false}, // non-numeric generation
		{"ix.g1.t0", 0, false}, // not a shard token
		{"ix.sx", 0, false},    // non-numeric shard
		{"other.s0", 0, false}, // different prefix
	}
	for _, c := range cases {
		gen, ok := shardFileGen(c.name, "ix")
		if ok != c.ok || (ok && gen != c.gen) {
			t.Errorf("shardFileGen(%q) = (%d, %v), want (%d, %v)", c.name, gen, ok, c.gen, c.ok)
		}
	}
}
