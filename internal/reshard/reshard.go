// Package reshard implements the offline K → K′ reshard of a
// file-backed index: it opens an existing sharded (or single-tree)
// index strictly read-only, streams every stored entry out at the
// index's current clock, routes the live entries under a target
// partition policy, bulk-loads K′ new shard trees into a fresh file
// generation, verifies them, and commits with a single atomic manifest
// rename.  A crash at any point before that rename leaves the original
// index byte-for-byte untouched and the reshard retryable; a crash
// after it leaves the new index committed (only garbage files remain,
// which a retry or the next reshard cleans up).
//
// The phases, in order (the obs.ReshardPhase gauge tracks them):
//
//  1. scan    — open each source page file with
//     storage.OpenFileStoreReadOnly and export every leaf entry.
//  2. route   — drop entries expired at the global clock, check live
//     ids are unique, and assign each entry its target shard
//     (internal/manifest routing, the same code the library uses).
//  3. load    — bulk-load each target shard into
//     "<path>.g<G+1>.s<i>.tmp".
//  4. verify  — reopen every tmp file read-only, check the tree
//     invariants, and compare its exported records against the routed
//     group element-wise.
//  5. commit  — rename the tmp files to their final generation names
//     (invisible to the live index, whose manifest still points at
//     generation G), then atomically rename the new manifest into
//     place: that single rename is the commit point.
//
// After the commit the previous generation's page files are deleted
// best-effort; failures there are logged, not fatal, because the
// committed index never references them.
package reshard

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"rexptree/internal/core"
	"rexptree/internal/geom"
	"rexptree/internal/manifest"
	"rexptree/internal/obs"
	"rexptree/internal/storage"
)

// Phase numbers published on the obs.ReshardPhase gauge.
const (
	PhaseIdle   = 0
	PhaseScan   = 1
	PhaseRoute  = 2
	PhaseLoad   = 3
	PhaseVerify = 4
	PhaseCommit = 5
)

// Options configures one reshard run.
type Options struct {
	// Path is the index base path: the manifest sidecar lives at
	// "<Path>.manifest" and shard files at the manifest's generation.
	// An index without a manifest is treated as a single Tree stored at
	// Path itself.
	Path string

	// Shards is the target shard count K′ (≥ 1).
	Shards int

	// Policy is the target partition policy: "hash" or "speed".
	Policy string

	// SpeedBands are the target |velocity| band boundaries under the
	// speed policy: Shards-1 ascending non-negative values.  Leave
	// empty to re-tune them from the quantiles of the scanned live
	// speed distribution.
	SpeedBands []float64

	// Metrics, when non-nil, receives the reshard progress counters
	// and the phase gauge.
	Metrics *obs.Metrics

	// Log, when non-nil, receives progress and warning lines.
	Log func(format string, args ...any)

	// WrapSource and WrapTarget, when non-nil, wrap each source /
	// target page store before use — the crash-injection tests insert
	// storage.FaultStore here.
	WrapSource func(shard int, s storage.Store) storage.Store
	WrapTarget func(shard int, s storage.Store) storage.Store

	// BeforeRename, when non-nil, runs before every commit-phase
	// rename; returning an error aborts the reshard at that exact
	// point — the crash-injection tests kill the run pre-rename and
	// mid-rename through it.
	BeforeRename func(from, to string) error
}

// Result reports what a successful reshard did.
type Result struct {
	SourceShards int     `json:"source_shards"`
	SourcePolicy string  `json:"source_policy"` // "single" for a manifest-less tree
	TargetShards int     `json:"target_shards"`
	TargetPolicy string  `json:"target_policy"`
	Generation   int     `json:"generation"` // committed file generation
	Clock        float64 `json:"clock"`      // scan time: the max source shard clock

	Scanned int   `json:"entries_scanned"` // leaf entries read, live and expired
	Expired int   `json:"entries_expired"` // dropped as expired at Clock
	Live    int   `json:"entries_live"`
	Routed  []int `json:"routed_per_shard"`

	BytesWritten int64     `json:"bytes_written"`
	SpeedBands   []float64 `json:"speed_bands,omitempty"`
	Retuned      bool      `json:"retuned"` // bands derived from the scanned distribution
}

type record struct {
	oid uint32
	p   geom.MovingPoint
}

// Run executes one reshard.  On error the original index is untouched:
// nothing it references is written at any point before the commit
// rename, and the commit itself only renames fully-verified files.
func Run(opts Options) (*Result, error) {
	r := &runner{opts: opts, m: opts.Metrics}
	defer r.setPhase(PhaseIdle)
	res, err := r.run()
	if err != nil {
		r.cleanupTmp()
		return nil, err
	}
	return res, nil
}

type runner struct {
	opts Options
	m    *obs.Metrics
	tmps []string // tmp files created this run, removed on error
}

func (r *runner) logf(format string, args ...any) {
	if r.opts.Log != nil {
		r.opts.Log(format, args...)
	}
}

func (r *runner) setPhase(p int64) {
	if r.m != nil {
		r.m.ReshardPhase.Set(p)
	}
}

func (r *runner) count(c func(*obs.Metrics) *obs.Counter, n uint64) {
	if r.m != nil {
		c(r.m).Add(n)
	}
}

func (r *runner) rename(from, to string) error {
	if r.opts.BeforeRename != nil {
		if err := r.opts.BeforeRename(from, to); err != nil {
			return fmt.Errorf("reshard: before rename %s -> %s: %w", from, to, err)
		}
	}
	if err := os.Rename(from, to); err != nil {
		return fmt.Errorf("reshard: %w", err)
	}
	return nil
}

func (r *runner) cleanupTmp() {
	for _, f := range r.tmps {
		os.Remove(f)
	}
	r.tmps = nil
}

func (r *runner) run() (*Result, error) {
	opts := r.opts
	if opts.Path == "" {
		return nil, fmt.Errorf("reshard: no index path")
	}
	if opts.Shards < 1 {
		return nil, fmt.Errorf("reshard: invalid target shard count %d", opts.Shards)
	}
	switch opts.Policy {
	case "hash", "speed":
	default:
		return nil, fmt.Errorf("reshard: unknown target partition policy %q", opts.Policy)
	}
	if opts.Policy == "hash" && len(opts.SpeedBands) > 0 {
		return nil, fmt.Errorf("reshard: speed bands given for hash partitioning")
	}
	if len(opts.SpeedBands) > 0 {
		// Fail before scanning anything: the bands must form a valid
		// target manifest.
		probe := manifest.Manifest{
			Version: manifest.Version, Shards: opts.Shards, Hash: manifest.Hash,
			Partition: opts.Policy, SpeedBands: opts.SpeedBands,
		}
		if err := probe.Validate(); err != nil {
			return nil, fmt.Errorf("reshard: %w", err)
		}
	}

	// Locate the source: a manifest names K shard files of some
	// generation; without one, Path itself is a single tree file.
	res := &Result{TargetShards: opts.Shards, TargetPolicy: opts.Policy}
	man, found, err := manifest.Read(manifest.Path(opts.Path))
	if err != nil {
		return nil, fmt.Errorf("reshard: %w", err)
	}
	srcGen := 0
	var srcPaths []string
	if found {
		srcGen = man.Generation
		res.SourceShards = man.Shards
		res.SourcePolicy = man.Partition
		for i := 0; i < man.Shards; i++ {
			srcPaths = append(srcPaths, manifest.ShardPath(opts.Path, srcGen, i))
		}
	} else {
		if _, err := os.Stat(opts.Path); err != nil {
			return nil, fmt.Errorf("reshard: no index at %s: %w", opts.Path, err)
		}
		res.SourceShards = 1
		res.SourcePolicy = "single"
		srcPaths = []string{opts.Path}
	}
	res.Generation = srcGen + 1

	// Phase 1: scan.  Strictly read-only — a fault anywhere in here
	// cannot perturb the source files.
	r.setPhase(PhaseScan)
	r.logf("scan: %d source shard(s), generation %d", len(srcPaths), srcGen)
	var cfg core.Config
	var recs []record
	clock := 0.0
	for i, sp := range srcPaths {
		fs, err := storage.OpenFileStoreReadOnly(sp)
		if err != nil {
			return nil, fmt.Errorf("reshard: opening source shard %d: %w", i, err)
		}
		var st storage.Store = fs
		if opts.WrapSource != nil {
			st = opts.WrapSource(i, st)
		}
		shardCfg, err := core.MetaConfig(st)
		if err != nil {
			st.Close()
			return nil, fmt.Errorf("reshard: source shard %d: %w", i, err)
		}
		if i == 0 {
			cfg = shardCfg
		} else if shardCfg != cfg {
			st.Close()
			return nil, fmt.Errorf("reshard: source shard %d configuration %+v disagrees with shard 0 %+v", i, shardCfg, cfg)
		}
		t, err := core.Open(shardCfg, st)
		if err != nil {
			st.Close()
			return nil, fmt.Errorf("reshard: opening source shard %d: %w", i, err)
		}
		if now := t.Now(); now > clock {
			clock = now
		}
		err = t.Export(func(oid uint32, p geom.MovingPoint, live bool) error {
			recs = append(recs, record{oid, p})
			return nil
		})
		st.Close()
		if err != nil {
			return nil, fmt.Errorf("reshard: scanning source shard %d: %w", i, err)
		}
	}
	res.Scanned = len(recs)
	res.Clock = clock
	r.count(func(m *obs.Metrics) *obs.Counter { return &m.ReshardScanned }, uint64(len(recs)))

	// Phase 2: route.  Liveness is decided at the global clock — the
	// max over the shard clocks — so an entry that expired between one
	// shard's clock and another's is dropped consistently.  Live ids
	// must be unique: the front-end's delete-then-insert re-routing
	// keeps at most one live copy per object, so a duplicate means a
	// corrupt source.
	r.setPhase(PhaseRoute)
	live := recs[:0]
	for _, rec := range recs {
		if cfg.ExpireAware && rec.p.TExp < clock {
			continue
		}
		live = append(live, rec)
	}
	res.Live = len(live)
	res.Expired = res.Scanned - res.Live
	seen := make(map[uint32]bool, len(live))
	for _, rec := range live {
		if seen[rec.oid] {
			return nil, fmt.Errorf("reshard: duplicate live object id %d across source shards", rec.oid)
		}
		seen[rec.oid] = true
	}

	bands := append([]float64(nil), opts.SpeedBands...)
	if opts.Policy == "speed" && opts.Shards > 1 && len(bands) == 0 {
		if len(live) == 0 {
			return nil, fmt.Errorf("reshard: cannot re-tune speed bands from an empty index; pass explicit bands")
		}
		speeds := make([]float64, len(live))
		for i, rec := range live {
			speeds[i] = manifest.Speed([3]float64(rec.p.Vel), cfg.Dims)
		}
		bands = manifest.QuantileBands(speeds, opts.Shards)
		res.Retuned = true
		r.logf("route: re-tuned speed bands from %d live speeds: %v", len(live), bands)
	}
	if opts.Policy == "speed" {
		res.SpeedBands = bands
	}
	route := func(rec record) int { return 0 }
	if opts.Shards > 1 {
		switch opts.Policy {
		case "hash":
			route = func(rec record) int { return manifest.ShardIndex(rec.oid, opts.Shards) }
		case "speed":
			route = func(rec record) int {
				return manifest.SpeedBandOf(bands, manifest.Speed([3]float64(rec.p.Vel), cfg.Dims))
			}
		}
	}
	groups := make([][]core.BulkItem, opts.Shards)
	res.Routed = make([]int, opts.Shards)
	for _, rec := range live {
		i := route(rec)
		groups[i] = append(groups[i], core.BulkItem{OID: rec.oid, Point: rec.p})
		res.Routed[i]++
	}
	r.count(func(m *obs.Metrics) *obs.Counter { return &m.ReshardRouted }, uint64(len(live)))
	r.logf("route: %d live of %d scanned (%d expired at clock %.3f) -> %v", res.Live, res.Scanned, res.Expired, clock, res.Routed)

	// Phase 3: load each target shard into a tmp file of the next
	// generation.  Stale shard files of every generation other than the
	// live source's — leftovers of a previously crashed offline attempt
	// at any generation, or of an aborted live reshard (which builds its
	// target generation under the final ".g<G>.s<i>" names) — are
	// removed first so a retry starts clean and never reopens a
	// half-built file.
	r.setPhase(PhaseLoad)
	newGen := srcGen + 1
	keep := []int{}
	if found {
		keep = append(keep, srcGen)
	}
	if stale, err := CleanStale(opts.Path, keep...); err != nil {
		r.logf("load: stale-file sweep: %v", err)
	} else if len(stale) > 0 {
		r.logf("load: removed %d stale file(s) from previous attempts", len(stale))
	}
	finals := make([]string, opts.Shards)
	tmps := make([]string, opts.Shards)
	for i := range groups {
		finals[i] = manifest.ShardPath(opts.Path, newGen, i)
		tmps[i] = finals[i] + ".tmp"
		fs, err := storage.CreateFileStore(tmps[i])
		if err != nil {
			return nil, fmt.Errorf("reshard: creating target shard %d: %w", i, err)
		}
		r.tmps = append(r.tmps, tmps[i])
		var st storage.Store = fs
		if opts.WrapTarget != nil {
			st = opts.WrapTarget(i, st)
		}
		t, err := core.BulkLoad(cfg, st, groups[i], clock)
		if err != nil {
			st.Close()
			return nil, fmt.Errorf("reshard: loading target shard %d: %w", i, err)
		}
		if err := t.Sync(); err != nil {
			st.Close()
			return nil, fmt.Errorf("reshard: syncing target shard %d: %w", i, err)
		}
		if err := st.Close(); err != nil {
			return nil, fmt.Errorf("reshard: closing target shard %d: %w", i, err)
		}
		fi, err := os.Stat(tmps[i])
		if err != nil {
			return nil, fmt.Errorf("reshard: %w", err)
		}
		res.BytesWritten += fi.Size()
		r.count(func(m *obs.Metrics) *obs.Counter { return &m.ReshardLoaded }, uint64(len(groups[i])))
		r.count(func(m *obs.Metrics) *obs.Counter { return &m.ReshardBytes }, uint64(fi.Size()))
	}
	r.logf("load: %d target shard(s), %d bytes", opts.Shards, res.BytesWritten)

	// Phase 4: verify every tmp file from disk before anything is
	// renamed: structural invariants hold and the stored record set is
	// element-wise the routed group.
	r.setPhase(PhaseVerify)
	for i := range groups {
		if err := r.verifyShard(tmps[i], cfg, groups[i], clock); err != nil {
			return nil, fmt.Errorf("reshard: verifying target shard %d: %w", i, err)
		}
	}

	// Phase 5: commit.  The tmp→final renames are invisible to the
	// live index (its manifest still names generation srcGen); the
	// manifest rename at the end is the single atomic commit point.
	r.setPhase(PhaseCommit)
	for i := range groups {
		if err := r.rename(tmps[i], finals[i]); err != nil {
			return nil, err
		}
	}
	r.tmps = nil
	newMan := manifest.Manifest{
		Version:    manifest.Version,
		Shards:     opts.Shards,
		Hash:       manifest.Hash,
		Partition:  opts.Policy,
		SpeedBands: bands,
		AutoTuned:  res.Retuned,
		Generation: newGen,
	}
	if err := newMan.Validate(); err != nil {
		return nil, fmt.Errorf("reshard: %w", err)
	}
	data, err := newMan.Encode()
	if err != nil {
		return nil, fmt.Errorf("reshard: %w", err)
	}
	manTmp := manifest.Path(opts.Path) + ".reshard"
	if err := os.WriteFile(manTmp, data, 0o644); err != nil {
		return nil, fmt.Errorf("reshard: %w", err)
	}
	if err := r.rename(manTmp, manifest.Path(opts.Path)); err != nil {
		os.Remove(manTmp)
		return nil, err
	}
	r.logf("commit: manifest now names %d shard(s) at generation %d", opts.Shards, newGen)

	// The old generation is garbage now; removing it is best-effort.
	// The sweep also takes the old shards' write-ahead logs with them —
	// a durable source leaves one "<shard>.wal" beside every page file.
	for _, sp := range srcPaths {
		if err := os.Remove(sp); err != nil {
			r.logf("cleanup: %v (the committed index does not reference this file)", err)
		}
		if err := os.Remove(sp + ".wal"); err != nil && !os.IsNotExist(err) {
			r.logf("cleanup: %v", err)
		}
	}
	if _, err := CleanStale(opts.Path, newGen); err != nil {
		r.logf("cleanup: stale-file sweep: %v", err)
	}
	return res, nil
}

// CleanStale removes the shard files of every generation of the index
// at base except the kept ones: page files ("<base>.s<i>" for
// generation 0, "<base>.g<g>.s<i>" for later generations), their
// ".wal" and ".tmp" sidecars, and a leftover "<base>.manifest.reshard"
// from an interrupted commit.  It never touches base itself, the
// live manifest, or files that do not match the shard naming scheme.
// Both the offline retry path and the live reshard engine run it so an
// aborted attempt at any generation cannot leave files a later attempt
// would silently reopen.
func CleanStale(base string, keepGens ...int) (removed []string, err error) {
	dir, prefix := filepath.Split(base)
	if dir == "" {
		dir = "."
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("reshard: %w", err)
	}
	keep := make(map[int]bool, len(keepGens))
	for _, g := range keepGens {
		keep[g] = true
	}
	var firstErr error
	for _, e := range entries {
		name := e.Name()
		gen, ok := shardFileGen(name, prefix)
		if !ok || keep[gen] {
			continue
		}
		p := filepath.Join(dir, name)
		if rmErr := os.Remove(p); rmErr != nil {
			if firstErr == nil {
				firstErr = rmErr
			}
			continue
		}
		removed = append(removed, p)
	}
	return removed, firstErr
}

// shardFileGen decides whether name is a shard file (or sidecar) of
// the index whose base file name is prefix, and of which generation.
// Recognized forms, each optionally suffixed ".wal" or ".tmp":
//
//	<prefix>.s<i>        — generation 0
//	<prefix>.g<g>.s<i>   — generation g
//
// plus the interrupted-commit manifest "<prefix>.manifest.reshard"
// (reported as generation -1, which callers never keep).
func shardFileGen(name, prefix string) (gen int, ok bool) {
	rest, found := strings.CutPrefix(name, prefix+".")
	if !found {
		return 0, false
	}
	if rest == "manifest.reshard" {
		return -1, true
	}
	rest = strings.TrimSuffix(strings.TrimSuffix(rest, ".tmp"), ".wal")
	gen = 0
	if g, found := strings.CutPrefix(rest, "g"); found {
		dot := strings.IndexByte(g, '.')
		if dot < 1 {
			return 0, false
		}
		n, err := strconv.Atoi(g[:dot])
		if err != nil || n < 1 {
			return 0, false
		}
		gen, rest = n, g[dot+1:]
	}
	i, found := strings.CutPrefix(rest, "s")
	if !found {
		return 0, false
	}
	if n, err := strconv.Atoi(i); err != nil || n < 0 {
		return 0, false
	}
	return gen, true
}

// verifyShard reopens a freshly written shard file read-only and
// checks it holds exactly the routed records: tree invariants pass,
// the entry count matches, and every exported record equals its routed
// counterpart (quantization is idempotent, so the stored form must be
// bit-identical to the scanned form).
func (r *runner) verifyShard(path string, cfg core.Config, group []core.BulkItem, clock float64) error {
	fs, err := storage.OpenFileStoreReadOnly(path)
	if err != nil {
		return err
	}
	defer fs.Close()
	t, err := core.Open(cfg, fs)
	if err != nil {
		return err
	}
	if err := t.CheckInvariants(); err != nil {
		return err
	}
	if t.Now() != clock {
		return fmt.Errorf("clock %v, want %v", t.Now(), clock)
	}
	want := make(map[uint32]geom.MovingPoint, len(group))
	for _, it := range group {
		want[it.OID] = it.Point
	}
	got := 0
	err = t.Export(func(oid uint32, p geom.MovingPoint, live bool) error {
		w, ok := want[oid]
		if !ok {
			return fmt.Errorf("stored object %d was not routed here", oid)
		}
		if p != w {
			return fmt.Errorf("object %d stored as %+v, routed as %+v", oid, p, w)
		}
		if !live {
			return fmt.Errorf("object %d stored expired", oid)
		}
		got++
		return nil
	})
	if err != nil {
		return err
	}
	if got != len(group) {
		return fmt.Errorf("%d stored entries, %d routed", got, len(group))
	}
	return nil
}
