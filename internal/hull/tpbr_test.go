package hull

import (
	"math"
	"math/rand"
	"testing"

	"rexptree/internal/geom"
)

var testWorld = geom.Rect{Lo: geom.Vec{0, 0}, Hi: geom.Vec{1000, 1000}}

// randItems generates a mix of moving points and child rectangles,
// with finite or (optionally) infinite expiration times, positioned
// around the given time.
func randItems(rng *rand.Rand, n, dims int, now float64, allowInf bool) []geom.TPRect {
	items := make([]geom.TPRect, n)
	for k := range items {
		var r geom.Rect
		var vlo, vhi geom.Vec
		for i := 0; i < dims; i++ {
			a := rng.Float64() * 900
			w := 0.0
			if rng.Intn(2) == 0 { // half are true rectangles
				w = rng.Float64() * 20
			}
			r.Lo[i], r.Hi[i] = a, a+w
			vlo[i] = rng.Float64()*6 - 3
			vhi[i] = vlo[i]
			if w > 0 {
				vhi[i] = vlo[i] + rng.Float64()
			}
		}
		texp := now + rng.Float64()*120
		if allowInf && rng.Intn(5) == 0 {
			texp = geom.Inf()
		}
		items[k] = geom.TPRectAt(now, r, vlo, vhi, texp, dims)
	}
	return items
}

// checkBounds verifies that br contains each item for all times in
// [now, item expiry] (capped at cap for never-expiring items).
func checkBounds(t *testing.T, br geom.TPRect, items []geom.TPRect, now, cap float64, dims int) {
	t.Helper()
	for k, it := range items {
		end := it.TExp
		if !geom.IsFinite(end) || end > cap {
			end = cap
		}
		if end < now {
			end = now
		}
		for _, tt := range []float64{now, (now + end) / 2, end} {
			outer, inner := br.At(tt), it.At(tt)
			for i := 0; i < dims; i++ {
				eps := 1e-6 * (1 + math.Abs(inner.Lo[i]) + math.Abs(inner.Hi[i]))
				if inner.Lo[i] < outer.Lo[i]-eps || inner.Hi[i] > outer.Hi[i]+eps {
					t.Fatalf("item %d escapes %v bound at t=%v: item=%v br=%v",
						k, tt, tt, inner, outer)
				}
			}
		}
	}
}

func TestConservativeBoundsForever(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for iter := 0; iter < 100; iter++ {
		now := rng.Float64() * 50
		items := randItems(rng, 1+rng.Intn(20), 2, now, true)
		br := Conservative(items, now, 2)
		// Conservative bounds hold for all future times, even past expiry.
		for _, horizon := range []float64{0, 10, 500} {
			for k, it := range items {
				tt := now + horizon
				if !br.At(tt).ContainsRect(shrinkEps(it.At(tt), 1e-6), 2) {
					t.Fatalf("iter %d: item %d escapes conservative bound at t=%v", iter, k, tt)
				}
			}
		}
	}
}

// shrinkEps shrinks r by eps on all sides to absorb float round-off in
// exact containment checks.
func shrinkEps(r geom.Rect, eps float64) geom.Rect {
	for i := range r.Lo {
		r.Lo[i] += eps
		r.Hi[i] -= eps
	}
	return r
}

func TestStaticBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for iter := 0; iter < 100; iter++ {
		now := rng.Float64() * 50
		items := randItems(rng, 1+rng.Intn(20), 2, now, false)
		br := Static(items, now, 2, testWorld)
		if br.VLo != (geom.Vec{}) || br.VHi != (geom.Vec{}) {
			t.Fatal("static BR has nonzero velocities")
		}
		checkBounds(t, br, items, now, now+1000, 2)
	}
}

func TestStaticClampsInfiniteToWorld(t *testing.T) {
	p := geom.MovingPoint{Pos: geom.Vec{500, 500}, Vel: geom.Vec{1, -1}, TExp: geom.Inf()}
	br := Static([]geom.TPRect{geom.PointTPRect(p)}, 0, 2, testWorld)
	if br.Hi[0] != testWorld.Hi[0] {
		t.Errorf("upper x = %v, want world bound", br.Hi[0])
	}
	if br.Lo[1] != testWorld.Lo[1] {
		t.Errorf("lower y = %v, want world bound", br.Lo[1])
	}
	// Non-moving direction bounds stay tight.
	if br.Lo[0] != 500 || br.Hi[1] != 500 {
		t.Errorf("tight bounds lost: %v", br)
	}
}

func TestUpdateMinimumBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 200; iter++ {
		now := rng.Float64() * 50
		items := randItems(rng, 1+rng.Intn(20), 2, now, true)
		br := UpdateMinimum(items, now, 2)
		checkBounds(t, br, items, now, now+500, 2)
	}
}

func TestUpdateMinimumTightAtComputation(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	now := 10.0
	items := randItems(rng, 15, 2, now, false)
	br := UpdateMinimum(items, now, 2)
	cons := Conservative(items, now, 2)
	// Minimum at computation time: snapshot equals the conservative
	// (tight) snapshot.
	b, c := br.At(now), cons.At(now)
	for i := 0; i < 2; i++ {
		if math.Abs(b.Lo[i]-c.Lo[i]) > 1e-9 || math.Abs(b.Hi[i]-c.Hi[i]) > 1e-9 {
			t.Fatalf("update-minimum not tight at tupd: %v vs %v", b, c)
		}
	}
	// Velocity extents never exceed the conservative ones.
	for i := 0; i < 2; i++ {
		if br.VHi[i] > cons.VHi[i]+1e-12 || br.VLo[i] < cons.VLo[i]-1e-12 {
			t.Fatalf("update-minimum has wider velocities than conservative")
		}
	}
}

func TestUpdateMinimumEqualsConservativeForInfinite(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	items := randItems(rng, 10, 2, 0, false)
	for i := range items {
		items[i].TExp = geom.Inf()
	}
	um := UpdateMinimum(items, 0, 2)
	cons := Conservative(items, 0, 2)
	for i := 0; i < 2; i++ {
		if math.Abs(um.VLo[i]-cons.VLo[i]) > 1e-12 || math.Abs(um.VHi[i]-cons.VHi[i]) > 1e-12 {
			t.Fatalf("update-minimum != conservative for infinite expiry: %v vs %v", um, cons)
		}
	}
}

func TestNearOptimalBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	for iter := 0; iter < 200; iter++ {
		now := rng.Float64() * 50
		items := randItems(rng, 1+rng.Intn(20), 2, now, true)
		order := rng.Perm(2)
		br := NearOptimal(items, now, 40, 2, order)
		checkBounds(t, br, items, now, now+500, 2)
	}
}

func TestNearOptimalPaperFigure4Shape(t *testing.T) {
	// One fast object with a short expiry among slow long-lived ones:
	// the update-minimum/near-optimal upper speed must be far below the
	// fast object's speed (Figure 4 of the paper).
	slowA := geom.PointTPRect(geom.MovingPoint{Pos: geom.Vec{10}, Vel: geom.Vec{0.1}, TExp: 100})
	slowB := geom.PointTPRect(geom.MovingPoint{Pos: geom.Vec{12}, Vel: geom.Vec{-0.1}, TExp: 100})
	fast := geom.PointTPRect(geom.MovingPoint{Pos: geom.Vec{11}, Vel: geom.Vec{5}, TExp: 2})
	items := []geom.TPRect{slowA, slowB, fast}
	um := UpdateMinimum(items, 0, 1)
	// Anchored at (0, 12) it must contain (2, 21): slope 4.5 — reduced
	// from the conservative slope 5, per Figure 4.
	if um.VHi[0] >= 5 || um.VHi[0] < 4.5-1e-9 {
		t.Errorf("update-minimum upper speed %v, want 4.5", um.VHi[0])
	}
	no := NearOptimal(items, 0, 50, 1, []int{0})
	checkBounds(t, no, items, 0, 100, 1)
	if no.VHi[0] >= 1 {
		t.Errorf("near-optimal upper speed %v; expiry not exploited", no.VHi[0])
	}
	cons := Conservative(items, 0, 1)
	if cons.VHi[0] != 5 {
		t.Errorf("conservative upper speed = %v, want 5", cons.VHi[0])
	}
}

func TestComputeDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	items := randItems(rng, 8, 2, 0, false)
	for _, k := range []Kind{KindConservative, KindStatic, KindUpdateMinimum, KindNearOptimal, KindOptimal} {
		br := Compute(k, items, 0, 30, 2, testWorld, []int{0, 1})
		checkBounds(t, br, items, 0, 200, 2)
		if k.String() == "unknown" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if Kind(99).String() != "unknown" {
		t.Error("invalid kind should stringify as unknown")
	}
}

func TestEffPhi(t *testing.T) {
	items := []geom.TPRect{{TExp: 50}, {TExp: 80}}
	if got := effPhi(items, 10, 100); got != 70 {
		t.Errorf("effPhi = %v, want 70 (texpmax-tupd)", got)
	}
	if got := effPhi(items, 10, 30); got != 30 {
		t.Errorf("effPhi = %v, want 30 (horizon)", got)
	}
	inf := []geom.TPRect{{TExp: geom.Inf()}}
	if got := effPhi(inf, 10, 30); got != 30 {
		t.Errorf("effPhi infinite = %v, want horizon", got)
	}
	expired := []geom.TPRect{{TExp: 5}}
	if got := effPhi(expired, 10, 30); got <= 0 {
		t.Errorf("effPhi must stay positive, got %v", got)
	}
}
