package hull

import (
	"math"
	"math/rand"
	"testing"
)

func TestUpperChainSimple(t *testing.T) {
	pts := []pt{{0, 0}, {1, 2}, {2, 1}, {3, 3}, {4, 0}}
	h := upperChain(append([]pt(nil), pts...))
	// Upper hull: slopes decrease 2, 0.5, -3; (2,1) lies below.
	want := []pt{{0, 0}, {1, 2}, {3, 3}, {4, 0}}
	if len(h) != len(want) {
		t.Fatalf("upper chain = %v", h)
	}
	for i := range want {
		if h[i] != want[i] {
			t.Fatalf("upper chain = %v, want %v", h, want)
		}
	}
}

func TestLowerChainSimple(t *testing.T) {
	pts := []pt{{0, 0}, {1, -2}, {2, 1}, {3, -1}, {4, 0}}
	h := lowerChain(append([]pt(nil), pts...))
	want := []pt{{0, 0}, {1, -2}, {3, -1}, {4, 0}}
	if len(h) != len(want) {
		t.Fatalf("lower chain = %v", h)
	}
	for i := range want {
		if h[i] != want[i] {
			t.Fatalf("lower chain = %v, want %v", h, want)
		}
	}
}

func TestChainsDedupeSameT(t *testing.T) {
	pts := []pt{{0, 1}, {0, 5}, {0, -3}, {2, 0}}
	up := upperChain(append([]pt(nil), pts...))
	if up[0] != (pt{0, 5}) {
		t.Errorf("upper chain kept wrong duplicate: %v", up)
	}
	lo := lowerChain(append([]pt(nil), pts...))
	if lo[0] != (pt{0, -3}) {
		t.Errorf("lower chain kept wrong duplicate: %v", lo)
	}
}

// bruteUpperMin finds the minimum trapezoid area over [0,phi] among all
// lines through pairs of points (plus horizontals through each point)
// that dominate every point — an exhaustive oracle for upperBridge.
func bruteUpperMin(pts []pt, phi float64) float64 {
	best := math.Inf(1)
	try := func(a, b float64) {
		for _, p := range pts {
			if a+b*p.t < p.x-1e-9 {
				return
			}
		}
		// Area of the region below the line over [0,phi] relative to 0:
		// integral a + b t = a*phi + b*phi^2/2.
		if v := a*phi + b*phi*phi/2; v < best {
			best = v
		}
	}
	for i := range pts {
		try(pts[i].x, 0)
		for j := i + 1; j < len(pts); j++ {
			if pts[i].t == pts[j].t {
				continue
			}
			b := (pts[j].x - pts[i].x) / (pts[j].t - pts[i].t)
			try(pts[i].x-b*pts[i].t, b)
		}
	}
	return best
}

func TestUpperBridgeIsOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 500; iter++ {
		n := 2 + rng.Intn(10)
		phi := 1 + rng.Float64()*9
		pts := make([]pt, n)
		for i := range pts {
			pts[i] = pt{rng.Float64() * phi * 1.5, rng.Float64()*20 - 10}
		}
		pts[0].t = 0 // always an anchor at the computation time
		// The paper guarantees phi <= max expiry (phi = min(H,
		// texpmax-tupd)), so at least one endpoint lies at or beyond
		// the optimization window.
		pts[1].t = phi * (1 + rng.Float64()*0.5)
		l := upperBridge(pts, phi/2, math.Inf(-1))
		// Must dominate every point.
		for _, p := range pts {
			if l.at(p.t) < p.x-1e-9 {
				t.Fatalf("iter %d: bridge %v below point %v", iter, l, p)
			}
		}
		got := l.a*phi + l.b*phi*phi/2
		want := bruteUpperMin(pts, phi)
		if got > want+1e-6*(1+math.Abs(want)) {
			t.Fatalf("iter %d: bridge area %v > brute-force optimum %v", iter, got, want)
		}
	}
}

func TestLowerBridgeIsOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for iter := 0; iter < 300; iter++ {
		n := 2 + rng.Intn(10)
		phi := 1 + rng.Float64()*9
		pts := make([]pt, n)
		neg := make([]pt, n)
		for i := range pts {
			pts[i] = pt{rng.Float64() * phi * 1.5, rng.Float64()*20 - 10}
		}
		pts[0].t = 0
		pts[1].t = phi * (1 + rng.Float64()*0.5) // see upper-bridge test
		for i := range pts {
			neg[i] = pt{pts[i].t, -pts[i].x}
		}
		l := lowerBridge(pts, phi/2, math.Inf(1))
		for _, p := range pts {
			if l.at(p.t) > p.x+1e-9 {
				t.Fatalf("iter %d: lower bridge %v above point %v", iter, l, p)
			}
		}
		// Mirror check: -lowerBridge(pts) should achieve the mirrored
		// brute-force optimum.
		got := -(l.a*phi + l.b*phi*phi/2)
		want := bruteUpperMin(neg, phi)
		if got > want+1e-6*(1+math.Abs(want)) {
			t.Fatalf("iter %d: lower bridge area %v > optimum %v", iter, got, want)
		}
	}
}

func TestUpperBridgeSlopeConstraint(t *testing.T) {
	pts := []pt{{0, 0}, {4, -4}} // unconstrained bridge slope -1
	l := upperBridge(pts, 2, 0.5)
	if l.b != 0.5 {
		t.Errorf("slope = %v, want raised to 0.5", l.b)
	}
	for _, p := range pts {
		if l.at(p.t) < p.x-1e-12 {
			t.Errorf("constrained bridge below point %v", p)
		}
	}
	// Constraint already satisfied: untouched.
	l2 := upperBridge(pts, 2, -3)
	if l2.b != -1 {
		t.Errorf("slope = %v, want unconstrained -1", l2.b)
	}
}

func TestLowerBridgeSlopeConstraint(t *testing.T) {
	pts := []pt{{0, 0}, {4, 4}} // unconstrained slope 1
	l := lowerBridge(pts, 2, -0.5)
	if l.b != -0.5 {
		t.Errorf("slope = %v, want lowered to -0.5", l.b)
	}
	for _, p := range pts {
		if l.at(p.t) > p.x+1e-12 {
			t.Errorf("constrained bridge above point %v", p)
		}
	}
}

func TestBridgeSinglePoint(t *testing.T) {
	l := upperBridge([]pt{{0, 7}}, 3, math.Inf(-1))
	if l.a != 7 || l.b != 0 {
		t.Errorf("single point bridge = %v", l)
	}
}
