package hull

import (
	"math/rand"
	"testing"

	"rexptree/internal/geom"
)

func TestOptimalBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 150; iter++ {
		now := rng.Float64() * 50
		items := randItems(rng, 1+rng.Intn(15), 2, now, true)
		br := Optimal(items, now, 40, 2)
		checkBounds(t, br, items, now, now+500, 2)
	}
}

func TestOptimal1DEqualsNearOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for iter := 0; iter < 50; iter++ {
		items := randItems(rng, 1+rng.Intn(10), 1, 0, false)
		o := Optimal(items, 0, 30, 1)
		n := NearOptimal(items, 0, 30, 1, []int{0})
		if o != n {
			t.Fatalf("1-D optimal %v != near-optimal %v", o, n)
		}
	}
}

// TestOptimalDominates verifies the central quality ordering: over the
// optimization window [tupd, tupd+phi], the optimal TPBR's area
// integral is no larger than that of any other bounding-rectangle
// type (all of which are valid line-pair bounds of the same items).
func TestOptimalDominates(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for iter := 0; iter < 200; iter++ {
		now := rng.Float64() * 20
		items := randItems(rng, 2+rng.Intn(15), 2, now, false)
		horizon := 5 + rng.Float64()*60
		phi := effPhi(items, now, horizon)
		opt := Optimal(items, now, horizon, 2)
		optArea := geom.AreaIntegral(opt, now, now+phi, 2)
		for _, k := range []Kind{KindConservative, KindStatic, KindUpdateMinimum, KindNearOptimal} {
			other := Compute(k, items, now, horizon, 2, testWorld, rng.Perm(2))
			a := geom.AreaIntegral(other, now, now+phi, 2)
			if optArea > a*(1+1e-9)+1e-9 {
				t.Fatalf("iter %d: optimal area %v > %v area %v", iter, optArea, k, a)
			}
		}
	}
}

func TestNearOptimalCloseToOptimal(t *testing.T) {
	// The paper finds near-optimal essentially as good as optimal; on
	// random inputs the gap should be modest on average.
	rng := rand.New(rand.NewSource(34))
	var sumOpt, sumNear float64
	for iter := 0; iter < 100; iter++ {
		items := randItems(rng, 5+rng.Intn(15), 2, 0, false)
		phi := effPhi(items, 0, 40)
		opt := Optimal(items, 0, 40, 2)
		near := NearOptimal(items, 0, 40, 2, rng.Perm(2))
		sumOpt += geom.AreaIntegral(opt, 0, phi, 2)
		sumNear += geom.AreaIntegral(near, 0, phi, 2)
	}
	if sumNear > sumOpt*1.25 {
		t.Errorf("near-optimal total area %v vs optimal %v: gap too large", sumNear, sumOpt)
	}
	if sumNear < sumOpt*(1-1e-9) {
		t.Errorf("near-optimal beat optimal: %v < %v", sumNear, sumOpt)
	}
}

func TestSweepPairsCoverAllMedians(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	for iter := 0; iter < 50; iter++ {
		items := randItems(rng, 3+rng.Intn(10), 1, 0, false)
		up, lo, minUp, maxLo := dimPoints(items, 0, 0)
		sortPts(up)
		sortPts(lo)
		phi := effPhi(items, 0, 30)
		pairs := sweepPairs(up, lo, phi, minUp, maxLo)
		if len(pairs) == 0 {
			t.Fatal("no sweep pairs")
		}
		// Every median in (0,phi) must produce a pair present in the
		// sweep enumeration.
		for _, frac := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
			m := phi * frac
			want := boundPair{lowerBridge(lo, m, maxLo), upperBridge(up, m, minUp)}
			found := false
			for _, p := range pairs {
				if p == want {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("median %v pair %v not enumerated (pairs=%v)", m, want, pairs)
			}
		}
	}
}
