package hull

import (
	"math"
	"testing"
)

func TestMedianNoComputedDims(t *testing.T) {
	if m := median(nil, nil, 8); m != 4 {
		t.Errorf("median with no dims = %v, want phi/2", m)
	}
}

func TestMedianPaperExample(t *testing.T) {
	// Paper (§4.1.4): for k=1, m = phi(3h1+2w1*phi) / (6h1+3w1*phi).
	h1, w1, phi := 3.0, 0.5, 10.0
	want := phi * (3*h1 + 2*w1*phi) / (6*h1 + 3*w1*phi)
	got := median([]float64{h1}, []float64{w1}, phi)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("median = %v, want %v", got, want)
	}
}

func TestMedianStaticComputedDim(t *testing.T) {
	// A computed dimension with zero velocity must not shift the
	// median: weight is uniform in time.
	got := median([]float64{5}, []float64{0}, 6)
	if math.Abs(got-3) > 1e-12 {
		t.Errorf("median = %v, want 3", got)
	}
}

func TestMedianGrowingDimShiftsRight(t *testing.T) {
	// A growing computed dimension weights later times more heavily,
	// so the median moves right of phi/2 (Figure 6).
	got := median([]float64{1}, []float64{2}, 10)
	if got <= 5 {
		t.Errorf("median = %v, want > phi/2", got)
	}
	if got >= 10 {
		t.Errorf("median = %v, exceeded phi", got)
	}
}

func TestMedianShrinkingDimShiftsLeft(t *testing.T) {
	got := median([]float64{10}, []float64{-0.5}, 10)
	if got >= 5 {
		t.Errorf("median = %v, want < phi/2", got)
	}
}

func TestMedianClamped(t *testing.T) {
	// Pathological negative-volume inputs must still yield a median
	// inside [0, phi].
	got := median([]float64{-3}, []float64{-1}, 4)
	if got < 0 || got > 4 {
		t.Errorf("median = %v outside [0,4]", got)
	}
}

func TestPolyMul(t *testing.T) {
	// (1)(2+3t) = 2+3t
	p := polyMul([]float64{1}, 2, 3)
	if len(p) != 2 || p[0] != 2 || p[1] != 3 {
		t.Fatalf("polyMul = %v", p)
	}
	// (2+3t)(1+t) = 2+5t+3t^2
	p = polyMul(p, 1, 1)
	want := []float64{2, 5, 3}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("polyMul = %v, want %v", p, want)
		}
	}
}
