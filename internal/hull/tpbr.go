package hull

import (
	"math"
	"slices"

	"rexptree/internal/geom"
)

// Kind selects one of the paper's bounding-rectangle types (§4.1).
type Kind int

const (
	// KindConservative bounds are minimum at computation time and move
	// their edges with the extreme velocities of the enclosed entries,
	// ignoring expiration times (the TPR-tree's rectangles).
	KindConservative Kind = iota
	// KindStatic bounds have zero edge velocities; they rely entirely
	// on expiration times to stay small (§4.1.2).
	KindStatic
	// KindUpdateMinimum bounds are minimum at computation time with
	// edge speeds reduced as far as the expiration times allow
	// (§4.1.2).
	KindUpdateMinimum
	// KindNearOptimal bounds minimize the bounding-trapezoid area per
	// dimension with bridge edges and dependency-adjusted medians,
	// visiting dimensions in a random order (§4.1.4).
	KindNearOptimal
	// KindOptimal bounds minimize the trapezoid hyper-volume exactly by
	// sweeping median lines through all bridge combinations (§4.1.4).
	KindOptimal
)

func (k Kind) String() string {
	switch k {
	case KindConservative:
		return "conservative"
	case KindStatic:
		return "static"
	case KindUpdateMinimum:
		return "update-minimum"
	case KindNearOptimal:
		return "near-optimal"
	case KindOptimal:
		return "optimal"
	}
	return "unknown"
}

// maxExp returns the latest expiration time among items (+Inf if any
// item never expires).
func maxExp(items []geom.TPRect) float64 {
	e := math.Inf(-1)
	for _, it := range items {
		if it.TExp > e {
			e = it.TExp
		}
	}
	return e
}

// effPhi returns Φ = min(horizon, t_expmax - t_upd), floored at a tiny
// positive value so the median is always well defined.
func effPhi(items []geom.TPRect, tupd, horizon float64) float64 {
	phi := horizon
	if e := maxExp(items); geom.IsFinite(e) && e-tupd < phi {
		phi = e - tupd
	}
	if phi < 1e-9 {
		phi = 1e-9
	}
	return phi
}

// Conservative computes the TPR-tree bounding rectangle: tight at tupd,
// edge velocities equal to the extreme entry velocities.
func Conservative(items []geom.TPRect, tupd float64, dims int) geom.TPRect {
	var lo, hi, vlo, vhi geom.Vec
	for i := 0; i < dims; i++ {
		lo[i], hi[i] = math.Inf(1), math.Inf(-1)
		vlo[i], vhi[i] = math.Inf(1), math.Inf(-1)
	}
	for _, it := range items {
		s := it.At(tupd)
		for i := 0; i < dims; i++ {
			lo[i] = math.Min(lo[i], s.Lo[i])
			hi[i] = math.Max(hi[i], s.Hi[i])
			vlo[i] = math.Min(vlo[i], it.VLo[i])
			vhi[i] = math.Max(vhi[i], it.VHi[i])
		}
	}
	return geom.TPRectAt(tupd, geom.Rect{Lo: lo, Hi: hi}, vlo, vhi, maxExp(items), dims)
}

// Static computes a zero-velocity bounding rectangle that contains
// every item until that item's expiration time.  Entries that never
// expire and still move are clamped to the world extent.
func Static(items []geom.TPRect, tupd float64, dims int, world geom.Rect) geom.TPRect {
	var lo, hi geom.Vec
	for i := 0; i < dims; i++ {
		lo[i], hi[i] = math.Inf(1), math.Inf(-1)
	}
	for _, it := range items {
		s := it.At(tupd)
		for i := 0; i < dims; i++ {
			lo[i] = math.Min(lo[i], s.Lo[i])
			hi[i] = math.Max(hi[i], s.Hi[i])
			switch {
			case geom.IsFinite(it.TExp) && it.TExp > tupd:
				e := it.At(it.TExp)
				lo[i] = math.Min(lo[i], e.Lo[i])
				hi[i] = math.Max(hi[i], e.Hi[i])
			case !geom.IsFinite(it.TExp):
				if it.VLo[i] < 0 {
					lo[i] = math.Min(lo[i], world.Lo[i])
				}
				if it.VHi[i] > 0 {
					hi[i] = math.Max(hi[i], world.Hi[i])
				}
			}
		}
	}
	return geom.TPRectAt(tupd, geom.Rect{Lo: lo, Hi: hi}, geom.Vec{}, geom.Vec{}, maxExp(items), dims)
}

// UpdateMinimum computes a bounding rectangle that is minimum at tupd
// and whose edge speeds are reduced (upper) or increased (lower) as
// far as the entries' expiration times permit (§4.1.2, Figure 4).
func UpdateMinimum(items []geom.TPRect, tupd float64, dims int) geom.TPRect {
	var lo, hi, vlo, vhi geom.Vec
	for i := 0; i < dims; i++ {
		lo[i], hi[i] = math.Inf(1), math.Inf(-1)
	}
	for _, it := range items {
		s := it.At(tupd)
		for i := 0; i < dims; i++ {
			lo[i] = math.Min(lo[i], s.Lo[i])
			hi[i] = math.Max(hi[i], s.Hi[i])
		}
	}
	for i := 0; i < dims; i++ {
		vl, vh := math.Inf(1), math.Inf(-1)
		any := false
		for _, it := range items {
			switch {
			case !geom.IsFinite(it.TExp):
				vl = math.Min(vl, it.VLo[i])
				vh = math.Max(vh, it.VHi[i])
				any = true
			case it.TExp > tupd:
				dt := it.TExp - tupd
				e := it.At(it.TExp)
				vl = math.Min(vl, (e.Lo[i]-lo[i])/dt)
				vh = math.Max(vh, (e.Hi[i]-hi[i])/dt)
				any = true
			}
			// Entries already expired at tupd only need containment at
			// tupd, which the snapshot bounds provide.
		}
		if !any {
			vl, vh = 0, 0
		}
		vlo[i], vhi[i] = vl, vh
	}
	return geom.TPRectAt(tupd, geom.Rect{Lo: lo, Hi: hi}, vlo, vhi, maxExp(items), dims)
}

// dimPoints builds the endpoint sets of Lemma 4.1 for dimension i:
// the upper/lower trajectory endpoints at each item's expiration time
// plus the extreme positions at tupd, in (τ, x) coordinates with
// τ = t - tupd.  It also returns the slope constraints contributed by
// never-expiring items.
func dimPoints(items []geom.TPRect, tupd float64, i int) (up, lo []pt, minUpSlope, maxLoSlope float64) {
	minUpSlope, maxLoSlope = math.Inf(-1), math.Inf(1)
	xmax, xmin := math.Inf(-1), math.Inf(1)
	for _, it := range items {
		s := it.At(tupd)
		xmax = math.Max(xmax, s.Hi[i])
		xmin = math.Min(xmin, s.Lo[i])
		switch {
		case !geom.IsFinite(it.TExp):
			minUpSlope = math.Max(minUpSlope, it.VHi[i])
			maxLoSlope = math.Min(maxLoSlope, it.VLo[i])
		case it.TExp > tupd:
			e := it.At(it.TExp)
			up = append(up, pt{it.TExp - tupd, e.Hi[i]})
			lo = append(lo, pt{it.TExp - tupd, e.Lo[i]})
		}
	}
	up = append(up, pt{0, xmax})
	lo = append(lo, pt{0, xmin})
	return up, lo, minUpSlope, maxLoSlope
}

// NearOptimal computes the near-optimal TPBR of §4.1.4: dimensions are
// visited in the given order (the tree passes a random permutation so
// no dimension is preferred); each dimension's bridges are found at
// the median adjusted for the dimensions already computed (Lemma 4.2).
//
// This sits on the engine's hot path (the bounding rectangle of every
// modified node is recomputed per update), so the expiry order — which
// is shared by all dimensions — is sorted once and the per-dimension
// endpoint lists are built already sorted.
func NearOptimal(items []geom.TPRect, tupd, horizon float64, dims int, order []int) geom.TPRect {
	phi := effPhi(items, tupd, horizon)

	// Indices of items with finite, unexpired expiry, sorted by expiry.
	type expKey struct {
		texp float64
		i    int32
	}
	keys := make([]expKey, 0, len(items))
	for i := range items {
		if geom.IsFinite(items[i].TExp) && items[i].TExp > tupd {
			keys = append(keys, expKey{items[i].TExp, int32(i)})
		}
	}
	slices.SortFunc(keys, func(a, b expKey) int {
		switch {
		case a.texp < b.texp:
			return -1
		case a.texp > b.texp:
			return 1
		}
		return 0
	})

	up := make([]pt, 0, len(keys)+1)
	loPts := make([]pt, 0, len(keys)+1)
	var lo, hi, vlo, vhi geom.Vec
	var hs, ws [geom.MaxDims]float64
	computed := 0
	for _, d := range order {
		xmax, xmin := math.Inf(-1), math.Inf(1)
		minUp, maxLo := math.Inf(-1), math.Inf(1)
		for i := range items {
			it := &items[i]
			if h := it.Hi[d] + it.VHi[d]*tupd; h > xmax {
				xmax = h
			}
			if l := it.Lo[d] + it.VLo[d]*tupd; l < xmin {
				xmin = l
			}
			if !geom.IsFinite(it.TExp) {
				minUp = math.Max(minUp, it.VHi[d])
				maxLo = math.Min(maxLo, it.VLo[d])
			}
		}
		up = append(up[:0], pt{0, xmax})
		loPts = append(loPts[:0], pt{0, xmin})
		for _, k := range keys {
			it := &items[k.i]
			tau := k.texp - tupd
			up = append(up, pt{tau, it.Hi[d] + it.VHi[d]*k.texp})
			loPts = append(loPts, pt{tau, it.Lo[d] + it.VLo[d]*k.texp})
		}
		m := median(hs[:computed], ws[:computed], phi)
		u := upperBridgeSorted(up, m, minUp)
		l := lowerBridgeSorted(loPts, m, maxLo)
		lo[d], vlo[d] = l.a, l.b
		hi[d], vhi[d] = u.a, u.b
		hs[computed] = u.a - l.a
		ws[computed] = u.b - l.b
		computed++
	}
	return geom.TPRectAt(tupd, geom.Rect{Lo: lo, Hi: hi}, vlo, vhi, maxExp(items), dims)
}
