package hull

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rexptree/internal/geom"
)

// genItems draws a small random item set from the given source.
func genItems(rng *rand.Rand) []geom.TPRect {
	return randItems(rng, 1+rng.Intn(12), 2, 0, true)
}

func TestQuickAllKindsBound(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	kinds := []Kind{KindConservative, KindStatic, KindUpdateMinimum, KindNearOptimal, KindOptimal}
	for iter := 0; iter < 150; iter++ {
		items := genItems(rng)
		horizon := 5 + rng.Float64()*50
		for _, k := range kinds {
			its := items
			if k == KindStatic {
				// Static rectangles bound never-expiring movers only up
				// to the world extent; give them finite expiry here (the
				// engine derives one from the world exit time anyway).
				its = append([]geom.TPRect(nil), items...)
				for i := range its {
					if !geom.IsFinite(its[i].TExp) {
						its[i].TExp = 50 + rng.Float64()*100
					}
				}
			}
			br := Compute(k, its, 0, horizon, 2, testWorld, rng.Perm(2))
			checkBounds(t, br, its, 0, 300, 2)
		}
	}
}

func TestQuickBridgeDominates(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 4 {
			return true
		}
		pts := make([]pt, 0, len(raw)/2+1)
		phi := 5.0
		pts = append(pts, pt{0, clamp(raw[0])})
		for i := 1; i+1 < len(raw); i += 2 {
			pts = append(pts, pt{math.Abs(clamp(raw[i])) / 10 * phi, clamp(raw[i+1])})
		}
		pts = append(pts, pt{phi * 1.2, clamp(raw[len(raw)-1])})
		l := upperBridge(append([]pt(nil), pts...), phi/2, math.Inf(-1))
		for _, p := range pts {
			if l.at(p.t) < p.x-1e-6*(1+math.Abs(p.x)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(103))}); err != nil {
		t.Error(err)
	}
}

func clamp(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 100)
}

func TestQuickMedianWithinRange(t *testing.T) {
	f := func(h1, w1, h2, w2, phiRaw float64) bool {
		phi := math.Abs(clamp(phiRaw)) + 0.001
		m := median([]float64{clamp(h1), clamp(h2)}, []float64{clamp(w1), clamp(w2)}, phi)
		return m >= 0 && m <= phi && !math.IsNaN(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(104))}); err != nil {
		t.Error(err)
	}
}

func TestQuickUpdateMinimumTighterThanConservative(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	for iter := 0; iter < 200; iter++ {
		items := genItems(rng)
		um := UpdateMinimum(items, 0, 2)
		cons := Conservative(items, 0, 2)
		for i := 0; i < 2; i++ {
			if um.VHi[i] > cons.VHi[i]+1e-9 || um.VLo[i] < cons.VLo[i]-1e-9 {
				t.Fatalf("iter %d: update-minimum wider than conservative in dim %d", iter, i)
			}
		}
	}
}
