package hull

import (
	"math/rand"
	"testing"

	"rexptree/internal/geom"
)

// benchItems builds a full-leaf-sized item set (170 entries, the
// engine's hot case).
func benchItems(n int) []geom.TPRect {
	rng := rand.New(rand.NewSource(1))
	return randItems(rng, n, 2, 0, false)
}

func BenchmarkConservative(b *testing.B) {
	items := benchItems(170)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Conservative(items, 0, 2)
	}
}

func BenchmarkStatic(b *testing.B) {
	items := benchItems(170)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Static(items, 0, 2, testWorld)
	}
}

func BenchmarkUpdateMinimum(b *testing.B) {
	items := benchItems(170)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		UpdateMinimum(items, 0, 2)
	}
}

func BenchmarkNearOptimal(b *testing.B) {
	items := benchItems(170)
	order := []int{0, 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		NearOptimal(items, 0, 60, 2, order)
	}
}

func BenchmarkOptimal(b *testing.B) {
	items := benchItems(170)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Optimal(items, 0, 60, 2)
	}
}
