package hull

// polyMul multiplies polynomial p (coefficients by ascending power)
// by the linear factor (h + w·τ).
func polyMul(p []float64, h, w float64) []float64 {
	out := make([]float64, len(p)+1)
	for i, c := range p {
		out[i] += c * h
		out[i+1] += c * w
	}
	return out
}

// median implements Lemma 4.2: given the extent polynomials of the
// already-computed dimensions — extents h[k] + w[k]·τ at the
// computation time — it returns the median position m in (0, Φ) at
// which the bridge for the next dimension must be found.
//
// With no computed dimensions the hyper-volume polynomial is the
// constant 1 and m = Φ/2, recovering Lemma 4.1.
func median(h, w []float64, phi float64) float64 {
	c := []float64{1}
	for k := range h {
		c = polyMul(c, h[k], w[k])
	}
	var num, den float64
	pw := phi // Φ^(i+1)
	for i, ci := range c {
		num += ci * pw * phi / float64(i+2)
		den += ci * pw / float64(i+1)
		pw *= phi
	}
	if den == 0 {
		return phi / 2
	}
	m := num / den
	if m < 0 {
		m = 0
	}
	if m > phi {
		m = phi
	}
	return m
}
