// Package hull computes time-parameterized bounding rectangles (TPBRs)
// for sets of moving points or child bounding rectangles, implementing
// the five bounding-region types studied in the paper (§4.1):
// conservative, static, update-minimum, near-optimal, and optimal.
//
// The near-optimal and optimal types rest on Lemma 4.1 — the
// minimum-area bounding trapezoid over [t_upd, t_upd+Φ] is delimited by
// the convex-hull edges ("bridges") that cross the median line
// t = t_upd + Φ/2 — and on Lemma 4.2, which shifts the median when
// earlier dimensions of the rectangle have already been fixed.
//
// All inputs and outputs use the epoch coordinate convention of
// package geom: stored coordinates are values at t = 0.
package hull

import (
	"math"
	"slices"
	"sort"
)

// pt is a point in the (τ, x) plane, τ relative to the computation
// time t_upd.
type pt struct{ t, x float64 }

// line is x(τ) = a + b·τ.
type line struct{ a, b float64 }

func (l line) at(t float64) float64 { return l.a + l.b*t }

// cross returns the z component of (b-a) × (c-a).
func cross(a, b, c pt) float64 {
	return (b.t-a.t)*(c.x-a.x) - (b.x-a.x)*(c.t-a.t)
}

// sortPts orders pts by (t, x) ascending.
func sortPts(pts []pt) {
	slices.SortFunc(pts, func(a, b pt) int {
		switch {
		case a.t < b.t:
			return -1
		case a.t > b.t:
			return 1
		case a.x < b.x:
			return -1
		case a.x > b.x:
			return 1
		}
		return 0
	})
}

// upperChainSorted returns the upper convex hull of pts, which must
// already be sorted by t ascending.  The hull is built in place over a
// fresh slice; pts is not modified.
func upperChainSorted(pts []pt) []pt {
	h := make([]pt, 0, len(pts))
	for _, p := range pts {
		// Keep only the topmost point per τ.
		if len(h) > 0 && h[len(h)-1].t == p.t {
			if h[len(h)-1].x >= p.x {
				continue
			}
			h = h[:len(h)-1]
		}
		for len(h) >= 2 && cross(h[len(h)-2], h[len(h)-1], p) >= 0 {
			h = h[:len(h)-1]
		}
		h = append(h, p)
	}
	return h
}

// lowerChainSorted returns the lower convex hull of pts, which must
// already be sorted by t ascending.
func lowerChainSorted(pts []pt) []pt {
	h := make([]pt, 0, len(pts))
	for _, p := range pts {
		if len(h) > 0 && h[len(h)-1].t == p.t {
			if h[len(h)-1].x <= p.x {
				continue
			}
			h = h[:len(h)-1]
		}
		for len(h) >= 2 && cross(h[len(h)-2], h[len(h)-1], p) <= 0 {
			h = h[:len(h)-1]
		}
		h = append(h, p)
	}
	return h
}

// upperChain sorts pts in place and returns their upper convex hull.
func upperChain(pts []pt) []pt {
	sortPts(pts)
	return upperChainSorted(pts)
}

// lowerChain sorts pts in place and returns their lower convex hull.
func lowerChain(pts []pt) []pt {
	sortPts(pts)
	return lowerChainSorted(pts)
}

// bridgeOf returns the line through the hull edge that spans τ = m.
// When m falls outside the hull's τ range, the nearest edge is used;
// a single-vertex hull yields the horizontal line through it.
func bridgeOf(h []pt, m float64) line {
	if len(h) == 1 {
		return line{h[0].x, 0}
	}
	i := sort.Search(len(h), func(k int) bool { return h[k].t >= m })
	switch {
	case i == 0:
		i = 1
	case i == len(h):
		i = len(h) - 1
	}
	p, q := h[i-1], h[i]
	if q.t == p.t { // degenerate duplicate τ (should not happen after dedupe)
		return line{math.Max(p.x, q.x), 0}
	}
	b := (q.x - p.x) / (q.t - p.t)
	return line{p.x - b*p.t, b}
}

// upperBridge returns the minimum-area upper bound line for the point
// set pts with median m, then raises its slope to at least minSlope
// (the constraint contributed by never-expiring trajectories) while
// keeping it above every point.
func upperBridge(pts []pt, m, minSlope float64) line {
	sortPts(pts)
	return upperBridgeSorted(pts, m, minSlope)
}

// upperBridgeSorted is upperBridge for pts already sorted by t.
func upperBridgeSorted(pts []pt, m, minSlope float64) line {
	return upperBridgeHull(upperChainSorted(pts), m, minSlope)
}

// upperBridgeHull computes the bridge on a precomputed upper hull.
// The slope-constrained fallback needs only the hull vertices: the
// intercept maximum of a linear functional over the point set is
// attained on the upper chain.
func upperBridgeHull(hull []pt, m, minSlope float64) line {
	l := bridgeOf(hull, m)
	if l.b >= minSlope {
		return l
	}
	a := math.Inf(-1)
	for _, p := range hull {
		if v := p.x - minSlope*p.t; v > a {
			a = v
		}
	}
	return line{a, minSlope}
}

// lowerBridge is the mirror image of upperBridge: the bound line below
// all points whose slope is lowered to at most maxSlope.
func lowerBridge(pts []pt, m, maxSlope float64) line {
	sortPts(pts)
	return lowerBridgeSorted(pts, m, maxSlope)
}

// lowerBridgeSorted is lowerBridge for pts already sorted by t.
func lowerBridgeSorted(pts []pt, m, maxSlope float64) line {
	return lowerBridgeHull(lowerChainSorted(pts), m, maxSlope)
}

// lowerBridgeHull is the mirror of upperBridgeHull.
func lowerBridgeHull(hull []pt, m, maxSlope float64) line {
	l := bridgeOf(hull, m)
	if l.b <= maxSlope {
		return l
	}
	a := math.Inf(1)
	for _, p := range hull {
		if v := p.x - maxSlope*p.t; v < a {
			a = v
		}
	}
	return line{a, maxSlope}
}
