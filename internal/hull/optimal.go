package hull

import (
	"math"
	"sort"

	"rexptree/internal/geom"
)

// boundPair is a candidate (lower, upper) bound-line pair for one
// dimension.
type boundPair struct{ lo, hi line }

// sweepPairs enumerates the bound-line pairs that arise as the median
// line sweeps across (0, phi): the breakpoints are the interior hull
// vertices of both chains, and between consecutive breakpoints the
// bridge pair is constant (§4.1.4).  upPts and loPts must be sorted by
// τ (sortPts); they are not modified.
func sweepPairs(upPts, loPts []pt, phi, minUpSlope, maxLoSlope float64) []boundPair {
	return sweepPairsHulls(upperChainSorted(upPts), lowerChainSorted(loPts), phi, minUpSlope, maxLoSlope)
}

// sweepPairsHulls is sweepPairs over precomputed hull chains.
func sweepPairsHulls(upHull, loHull []pt, phi, minUpSlope, maxLoSlope float64) []boundPair {
	breaks := []float64{0, phi}
	for _, p := range upHull {
		if p.t > 0 && p.t < phi {
			breaks = append(breaks, p.t)
		}
	}
	for _, p := range loHull {
		if p.t > 0 && p.t < phi {
			breaks = append(breaks, p.t)
		}
	}
	sort.Float64s(breaks)
	var pairs []boundPair
	for k := 0; k+1 < len(breaks); k++ {
		if breaks[k+1] <= breaks[k] {
			continue
		}
		m := (breaks[k] + breaks[k+1]) / 2
		p := boundPair{
			lo: lowerBridgeHull(loHull, m, maxLoSlope),
			hi: upperBridgeHull(upHull, m, minUpSlope),
		}
		if n := len(pairs); n > 0 && pairs[n-1] == p {
			continue
		}
		pairs = append(pairs, p)
	}
	return pairs
}

// Optimal computes the minimum hyper-volume TPBR by considering every
// combination of sweep-generated bridge pairs in the first dims-1
// dimensions and solving the last dimension exactly at the median
// induced by each combination (Lemma 4.2).  Worst-case cost is
// O(|P|^(dims-1) log |P|); it is only used in the bounding-rectangle
// comparison experiments.
func Optimal(items []geom.TPRect, tupd, horizon float64, dims int) geom.TPRect {
	if dims == 1 {
		return NearOptimal(items, tupd, horizon, dims, []int{0})
	}
	phi := effPhi(items, tupd, horizon)
	texp := maxExp(items)

	type dimData struct {
		upHull, loHull   []pt
		minUpSl, maxLoSl float64
		pairs            []boundPair
	}
	dd := make([]dimData, dims)
	for i := 0; i < dims; i++ {
		up, lo, minUp, maxLo := dimPoints(items, tupd, i)
		sortPts(up)
		sortPts(lo)
		dd[i] = dimData{
			upHull:  upperChainSorted(up),
			loHull:  lowerChainSorted(lo),
			minUpSl: minUp,
			maxLoSl: maxLo,
		}
		if i < dims-1 {
			dd[i].pairs = sweepPairsHulls(dd[i].upHull, dd[i].loHull, phi, minUp, maxLo)
		}
	}

	best := geom.TPRect{}
	bestArea := math.Inf(1)
	chosen := make([]boundPair, dims)

	var rec func(d int)
	rec = func(d int) {
		if d == dims-1 {
			// Solve the last dimension exactly for this combination.
			hs := make([]float64, 0, dims-1)
			ws := make([]float64, 0, dims-1)
			for k := 0; k < dims-1; k++ {
				hs = append(hs, chosen[k].hi.a-chosen[k].lo.a)
				ws = append(ws, chosen[k].hi.b-chosen[k].lo.b)
			}
			m := median(hs, ws, phi)
			chosen[d] = boundPair{
				lo: lowerBridgeHull(dd[d].loHull, m, dd[d].maxLoSl),
				hi: upperBridgeHull(dd[d].upHull, m, dd[d].minUpSl),
			}
			var lo, hi, vlo, vhi geom.Vec
			for i := 0; i < dims; i++ {
				lo[i], vlo[i] = chosen[i].lo.a, chosen[i].lo.b
				hi[i], vhi[i] = chosen[i].hi.a, chosen[i].hi.b
			}
			cand := geom.TPRectAt(tupd, geom.Rect{Lo: lo, Hi: hi}, vlo, vhi, texp, dims)
			if a := geom.AreaIntegral(cand, tupd, tupd+phi, dims); a < bestArea {
				bestArea = a
				best = cand
			}
			return
		}
		for _, p := range dd[d].pairs {
			chosen[d] = p
			rec(d + 1)
		}
	}
	rec(0)
	return best
}

// Compute dispatches to the bounding-rectangle computation selected by
// kind.  world is only used by KindStatic; order (a permutation of
// 0..dims-1) only by KindNearOptimal.
func Compute(kind Kind, items []geom.TPRect, tupd, horizon float64, dims int, world geom.Rect, order []int) geom.TPRect {
	switch kind {
	case KindStatic:
		return Static(items, tupd, dims, world)
	case KindUpdateMinimum:
		return UpdateMinimum(items, tupd, dims)
	case KindNearOptimal:
		return NearOptimal(items, tupd, horizon, dims, order)
	case KindOptimal:
		return Optimal(items, tupd, horizon, dims)
	default:
		return Conservative(items, tupd, dims)
	}
}
