package rexptree

import (
	"fmt"
	"time"

	"rexptree/internal/core"
	"rexptree/internal/hull"
	"rexptree/internal/storage"
)

// BoundingKind selects how the bounding rectangles of internal index
// entries are computed (paper §4.1).
type BoundingKind int

const (
	// Conservative rectangles move their edges with the extreme
	// velocities of the enclosed entries; they never exploit
	// expiration times.  This is what the TPR-tree uses.
	Conservative BoundingKind = iota
	// Static rectangles have zero edge velocities and rely entirely on
	// expiration times; competitive only under speed-dependent expiry.
	Static
	// UpdateMinimum rectangles are tight at computation time with edge
	// speeds reduced as far as expiration times allow.
	UpdateMinimum
	// NearOptimal rectangles minimize the bounding-trapezoid volume
	// per dimension via convex-hull bridges; the paper's overall best.
	NearOptimal
	// Optimal rectangles minimize the trapezoid volume exactly; more
	// expensive to compute and, notably, no better in search
	// performance than NearOptimal (paper §5.3).
	Optimal
)

func (k BoundingKind) internal() hull.Kind {
	switch k {
	case Static:
		return hull.KindStatic
	case UpdateMinimum:
		return hull.KindUpdateMinimum
	case NearOptimal:
		return hull.KindNearOptimal
	case Optimal:
		return hull.KindOptimal
	default:
		return hull.KindConservative
	}
}

// Durability selects how the index survives crashes (Options.
// Durability).  Anything other than DurabilityNone requires a
// file-backed tree (Options.Path) in the current checksummed page
// format and maintains a write-ahead log next to the page file
// (<path>.wal); reopening after a crash replays it automatically.
type Durability int

const (
	// DurabilityNone is the legacy behavior: no WAL, dirty pages are
	// flushed per operation, and only a clean Close makes the file
	// reopenable.  A crash loses the tree.
	DurabilityNone Durability = iota
	// DurabilityOnCommit fsyncs the WAL before an operation returns
	// (one fsync per UpdateBatch — group commit), so no acknowledged
	// update is ever lost.
	DurabilityOnCommit
	// DurabilityBatched appends to the WAL on every operation but
	// fsyncs on a timer (Options.SyncEvery): a crash loses at most the
	// last interval's acknowledged updates.
	DurabilityBatched
)

// String returns the policy's manifest spelling.
func (d Durability) String() string {
	switch d {
	case DurabilityOnCommit:
		return "on-commit"
	case DurabilityBatched:
		return "batched"
	default:
		return "none"
	}
}

// ParseDurability parses the manifest/CLI spelling of a policy.
func ParseDurability(s string) (Durability, error) {
	switch s {
	case "", "none":
		return DurabilityNone, nil
	case "on-commit":
		return DurabilityOnCommit, nil
	case "batched":
		return DurabilityBatched, nil
	}
	return DurabilityNone, fmt.Errorf("rexptree: unknown durability %q (none, on-commit, batched)", s)
}

// Options configures a Tree.  The zero value is not valid; start from
// DefaultOptions or TPROptions.
type Options struct {
	// Dims is the dimensionality of the space (1..MaxDims).
	Dims int

	// Bounding selects the bounding-rectangle type.
	Bounding BoundingKind

	// ExpireAware enables the R^exp-tree behaviour: expired reports
	// become invisible to queries and are lazily purged.  When false
	// the index is a plain TPR-tree.
	ExpireAware bool

	// StoreBRExpiration records expiration times inside internal index
	// entries.  The paper found this generally not worthwhile (§5.2);
	// leave it false unless experimenting.
	StoreBRExpiration bool

	// HeuristicsUseExpiration makes the insertion heuristics clamp
	// their objective integrals at entry expiration times (§4.2.2).
	HeuristicsUseExpiration bool

	// World is the extent of the data space.  Defaults to the paper's
	// 1000 x 1000 km.
	World Rect

	// BufferPages is the LRU buffer-pool capacity in 4 KiB pages
	// (default 50).
	BufferPages int

	// Path, when non-empty, stores the index in a page file at this
	// location instead of in memory.
	Path string

	// IOLatency, when positive, charges this much wall-clock time to
	// every page read and write that misses the buffer pool and
	// reaches the store.  It models the random-access latency of the
	// backing device: the paper's experiments count page I/Os as the
	// cost metric precisely because each one is a disk access (§5.1).
	// Zero (the default) leaves the store at native speed.
	IOLatency time.Duration

	// LockedReads routes queries through the tree's shared lock instead
	// of the default lock-free snapshot read path, restoring the
	// pre-snapshot behaviour where readers block behind writers (and
	// show up in the read lock-wait histogram).  It exists as the
	// baseline for benchmarking the two read paths against each other
	// (rexpbench -readscale) and as an escape hatch; leave it false.
	LockedReads bool

	// Beta sets the assumed querying-window length W = Beta·UI used by
	// the self-tuning horizon (default 0.5); FixedW overrides it with
	// a constant when positive.
	Beta   float64
	FixedW float64

	// Seed makes tie-breaking (the random dimension order of
	// near-optimal rectangles) deterministic.
	Seed int64

	// Observer, when non-nil, receives structural events (splits,
	// forced reinserts, condensing, lazy purges, buffer evictions)
	// synchronously as they occur.  The hook must be fast and must not
	// call back into the tree.  Leave nil for the uninstrumented fast
	// path; metrics counters accumulate either way.
	Observer func(ObserverEvent)

	// SlowOpThreshold, when positive, enables the slow-operation hook:
	// every public operation that takes at least this long is reported
	// to SlowOp (or, when SlowOp is nil, logged via the standard log
	// package).
	SlowOpThreshold time.Duration

	// SlowOp receives slow operations (name and duration).  Only used
	// when SlowOpThreshold is positive.
	SlowOp func(op string, d time.Duration)

	// FlightRecorder, when positive, keeps the execution traces of the
	// most recent FlightRecorder operations (and, separately, the most
	// recent FlightRecorder slow operations) in a fixed-size in-memory
	// ring.  Retained traces are served by TraceHandler (mounted at
	// /debug/rexp/traces by the serve-mode tools) and returned by
	// Traces.  Zero disables the recorder; tracing then costs nothing
	// on the regular query and update paths.
	FlightRecorder int

	// FlightSlowThreshold is the duration at or above which an
	// operation's trace is also retained in the flight recorder's slow
	// ring.  Defaults to SlowOpThreshold when set, else 10ms.  Only
	// used when FlightRecorder is positive.
	FlightSlowThreshold time.Duration

	// Durability selects the crash-safety policy; see the Durability
	// constants.  Requires Path.
	Durability Durability

	// SyncEvery is the WAL fsync interval under DurabilityBatched
	// (default 100ms).
	SyncEvery time.Duration

	// CheckpointBytes triggers a checkpoint when the WAL grows past
	// this size (default 4 MiB).  Checkpoints also fire when the buffer
	// pool overflows to twice its capacity.
	CheckpointBytes int64

	// testWrapStore, when non-nil, wraps the page store before the tree
	// uses it; crash and fault tests inject FaultStores here.
	testWrapStore func(storage.Store) storage.Store

	// testWALHook is installed as the WAL writer's Hook; crash tests
	// use it to stop the world at exact injection points.
	testWALHook func(event string) error
}

// DefaultOptions returns the paper's recommended R^exp-tree
// configuration: two dimensions, near-optimal bounding rectangles
// without recorded internal expiration times, expiration-aware
// heuristics.
func DefaultOptions() Options {
	return Options{
		Dims:                    2,
		Bounding:                NearOptimal,
		ExpireAware:             true,
		HeuristicsUseExpiration: true,
	}
}

// TPROptions returns the baseline TPR-tree configuration: conservative
// bounding rectangles and no expiration support.
func TPROptions() Options {
	return Options{
		Dims:     2,
		Bounding: Conservative,
	}
}

func (o Options) internal() core.Config {
	return core.Config{
		Dims:        o.Dims,
		BRKind:      o.Bounding.internal(),
		ExpireAware: o.ExpireAware,
		StoreBRExp:  o.StoreBRExpiration,
		AlgsUseExp:  o.HeuristicsUseExpiration,
		World:       toRect(o.World),
		BufferPages: o.BufferPages,
		Beta:        o.Beta,
		FixedW:      o.FixedW,
		Seed:        o.Seed,
		DeferFlush:  o.Durability != DurabilityNone,
	}
}

// durability defaults, applied where the tree wires up its WAL.
const (
	defaultSyncEvery       = 100 * time.Millisecond
	defaultCheckpointBytes = 4 << 20
)
