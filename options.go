package rexptree

import (
	"time"

	"rexptree/internal/core"
	"rexptree/internal/hull"
)

// BoundingKind selects how the bounding rectangles of internal index
// entries are computed (paper §4.1).
type BoundingKind int

const (
	// Conservative rectangles move their edges with the extreme
	// velocities of the enclosed entries; they never exploit
	// expiration times.  This is what the TPR-tree uses.
	Conservative BoundingKind = iota
	// Static rectangles have zero edge velocities and rely entirely on
	// expiration times; competitive only under speed-dependent expiry.
	Static
	// UpdateMinimum rectangles are tight at computation time with edge
	// speeds reduced as far as expiration times allow.
	UpdateMinimum
	// NearOptimal rectangles minimize the bounding-trapezoid volume
	// per dimension via convex-hull bridges; the paper's overall best.
	NearOptimal
	// Optimal rectangles minimize the trapezoid volume exactly; more
	// expensive to compute and, notably, no better in search
	// performance than NearOptimal (paper §5.3).
	Optimal
)

func (k BoundingKind) internal() hull.Kind {
	switch k {
	case Static:
		return hull.KindStatic
	case UpdateMinimum:
		return hull.KindUpdateMinimum
	case NearOptimal:
		return hull.KindNearOptimal
	case Optimal:
		return hull.KindOptimal
	default:
		return hull.KindConservative
	}
}

// Options configures a Tree.  The zero value is not valid; start from
// DefaultOptions or TPROptions.
type Options struct {
	// Dims is the dimensionality of the space (1..MaxDims).
	Dims int

	// Bounding selects the bounding-rectangle type.
	Bounding BoundingKind

	// ExpireAware enables the R^exp-tree behaviour: expired reports
	// become invisible to queries and are lazily purged.  When false
	// the index is a plain TPR-tree.
	ExpireAware bool

	// StoreBRExpiration records expiration times inside internal index
	// entries.  The paper found this generally not worthwhile (§5.2);
	// leave it false unless experimenting.
	StoreBRExpiration bool

	// HeuristicsUseExpiration makes the insertion heuristics clamp
	// their objective integrals at entry expiration times (§4.2.2).
	HeuristicsUseExpiration bool

	// World is the extent of the data space.  Defaults to the paper's
	// 1000 x 1000 km.
	World Rect

	// BufferPages is the LRU buffer-pool capacity in 4 KiB pages
	// (default 50).
	BufferPages int

	// Path, when non-empty, stores the index in a page file at this
	// location instead of in memory.
	Path string

	// IOLatency, when positive, charges this much wall-clock time to
	// every page read and write that misses the buffer pool and
	// reaches the store.  It models the random-access latency of the
	// backing device: the paper's experiments count page I/Os as the
	// cost metric precisely because each one is a disk access (§5.1).
	// Zero (the default) leaves the store at native speed.
	IOLatency time.Duration

	// Beta sets the assumed querying-window length W = Beta·UI used by
	// the self-tuning horizon (default 0.5); FixedW overrides it with
	// a constant when positive.
	Beta   float64
	FixedW float64

	// Seed makes tie-breaking (the random dimension order of
	// near-optimal rectangles) deterministic.
	Seed int64

	// Observer, when non-nil, receives structural events (splits,
	// forced reinserts, condensing, lazy purges, buffer evictions)
	// synchronously as they occur.  The hook must be fast and must not
	// call back into the tree.  Leave nil for the uninstrumented fast
	// path; metrics counters accumulate either way.
	Observer func(ObserverEvent)

	// SlowOpThreshold, when positive, enables the slow-operation hook:
	// every public operation that takes at least this long is reported
	// to SlowOp (or, when SlowOp is nil, logged via the standard log
	// package).
	SlowOpThreshold time.Duration

	// SlowOp receives slow operations (name and duration).  Only used
	// when SlowOpThreshold is positive.
	SlowOp func(op string, d time.Duration)
}

// DefaultOptions returns the paper's recommended R^exp-tree
// configuration: two dimensions, near-optimal bounding rectangles
// without recorded internal expiration times, expiration-aware
// heuristics.
func DefaultOptions() Options {
	return Options{
		Dims:                    2,
		Bounding:                NearOptimal,
		ExpireAware:             true,
		HeuristicsUseExpiration: true,
	}
}

// TPROptions returns the baseline TPR-tree configuration: conservative
// bounding rectangles and no expiration support.
func TPROptions() Options {
	return Options{
		Dims:     2,
		Bounding: Conservative,
	}
}

func (o Options) internal() core.Config {
	return core.Config{
		Dims:        o.Dims,
		BRKind:      o.Bounding.internal(),
		ExpireAware: o.ExpireAware,
		StoreBRExp:  o.StoreBRExpiration,
		AlgsUseExp:  o.HeuristicsUseExpiration,
		World:       toRect(o.World),
		BufferPages: o.BufferPages,
		Beta:        o.Beta,
		FixedW:      o.FixedW,
		Seed:        o.Seed,
	}
}
