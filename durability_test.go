package rexptree

import (
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"rexptree/internal/manifest"
	"rexptree/internal/storage"
	"rexptree/internal/wal"
)

// The crash matrix.  Every test here drives the same deterministic op
// stream against a durable file-backed Tree, kills it at a chosen
// injection point (a WAL lifecycle hook, an injected storage fault, or
// Abandon between operations), reopens the file, and requires the
// recovered index to fingerprint identically to an in-memory reference
// replayed to exactly the prefix of operations that was durable at the
// crash.  The fingerprint battery (reshard_test.go) covers all four
// query types, point lookups and the stored-report count.

// The op stream: each operation carries a unique, strictly increasing
// timestamp, so the clock of a recovered tree identifies exactly how
// many operations survived (recoveredOpCount).
const (
	crashOpsN   = 600
	crashOpBase = 1.0
	crashOpStep = 0.01
)

func crashFinalNow() float64 { return crashOpBase + float64(crashOpsN-1)*crashOpStep }

type crashOp struct {
	del bool
	id  uint32
	p   Point
	now float64
}

// crashOps builds a deterministic stream of updates (re-reports over
// ~300 objects) interleaved with deletions of currently-live objects.
// Expiration times are far in the future so expiry never perturbs the
// prefix equivalence (TestDurableRecoveryDropsExpired covers expiry).
func crashOps(n int, seed int64) []crashOp {
	rng := rand.New(rand.NewSource(seed))
	var live []uint32
	pos := map[uint32]int{} // id -> index in live, -1 when absent
	ops := make([]crashOp, 0, n)
	for i := 0; i < n; i++ {
		now := crashOpBase + float64(i)*crashOpStep
		if len(live) > 20 && i%13 == 5 {
			j := rng.Intn(len(live))
			id := live[j]
			last := len(live) - 1
			live[j] = live[last]
			pos[live[j]] = j
			live = live[:last]
			pos[id] = -1
			ops = append(ops, crashOp{del: true, id: id, now: now})
			continue
		}
		id := uint32(rng.Intn(300) + 1)
		if j, ok := pos[id]; !ok || j < 0 {
			pos[id] = len(live)
			live = append(live, id)
		}
		ops = append(ops, crashOp{
			id: id,
			p: Point{
				Pos:     Vec{rng.Float64() * 1000, rng.Float64() * 1000},
				Vel:     Vec{rng.Float64()*20 - 10, rng.Float64()*20 - 10},
				Time:    now,
				Expires: now + 1000,
			},
			now: now,
		})
	}
	return ops
}

func applyOps(t *testing.T, ix movingIndex, ops []crashOp) {
	t.Helper()
	for _, o := range ops {
		if o.del {
			if _, err := ix.Delete(o.id, o.now); err != nil {
				t.Fatal(err)
			}
		} else if err := ix.Update(o.id, o.p, o.now); err != nil {
			t.Fatal(err)
		}
	}
}

// memReference replays the prefix into a fresh in-memory tree — the
// ground truth a recovered file must match.
func memReference(t *testing.T, ops []crashOp) *Tree {
	t.Helper()
	tr, err := Open(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	applyOps(t, tr, ops)
	return tr
}

// recoveredOpCount derives how many ops of the stream survived from
// the recovered tree's clock (every op has a unique timestamp).
func recoveredOpCount(tr *Tree) int {
	clk := tr.t.Now()
	if clk < crashOpBase {
		return 0
	}
	return int(math.Round((clk-crashOpBase)/crashOpStep)) + 1
}

func durableOpts(path string, d Durability) Options {
	o := DefaultOptions()
	o.Path = path
	o.Durability = d
	return o
}

// requireRecovered reopens the index durably, checks that exactly
// wantOps operations survived, and fingerprints it against the
// reference prefix.  The recovered tree is returned open.
func requireRecovered(t *testing.T, path string, ops []crashOp, wantOps int) *Tree {
	t.Helper()
	re, err := Open(durableOpts(path, DurabilityOnCommit))
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	t.Cleanup(func() { re.Close() })
	if k := recoveredOpCount(re); k != wantOps {
		t.Fatalf("recovered %d ops, want %d", k, wantOps)
	}
	if err := re.Validate(); err != nil {
		t.Fatalf("recovered tree invalid: %v", err)
	}
	ref := memReference(t, ops[:wantOps])
	now := crashFinalNow()
	requireSameFingerprint(t, fingerprintIndex(t, re, now), fingerprintIndex(t, ref, now), "recovered index")
	return re
}

// flipPageByte flips one payload bit of page id in a v2 index file.
func flipPageByte(t *testing.T, path string, id int) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	off := int64(storage.PageSize) + int64(id)*int64(storage.PageSize+8) + 8 + 100
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x40
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}

// pageFileCount derives the page count of a v2 index file from its size.
func pageFileCount(t *testing.T, path string) int {
	t.Helper()
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return int((st.Size() - int64(storage.PageSize)) / int64(storage.PageSize+8))
}

// walHookCtl arms a WAL lifecycle failure: after arm, the (skip+1)-th
// occurrence of the event — and every later one, like a disk that
// stays dead — fails with err.  Before arm the hook is inert.
type walHookCtl struct {
	event string
	skip  int
	err   error
}

func (c *walHookCtl) hook(event string) error {
	if c.err == nil || event != c.event {
		return nil
	}
	if c.skip > 0 {
		c.skip--
		return nil
	}
	return c.err
}

func (c *walHookCtl) arm(event string, skip int, err error) {
	c.event, c.skip, c.err = event, skip, err
}

// TestDurableRecoverMidStream kills a durable tree between operations
// (Abandon: buffered WAL bytes are genuinely lost) at several points of
// the stream and requires recovery to restore every acknowledged
// operation — under DurabilityOnCommit that is the full prefix.  The
// small-checkpoint variant forces many checkpoints mid-stream, so
// recovery starts from a checkpointed base and replays only the tail.
func TestDurableRecoverMidStream(t *testing.T) {
	ops := crashOps(crashOpsN, 3)
	cases := []struct {
		name      string
		abandonAt int
		ckptBytes int64
	}{
		{"no-ops", 0, 0},
		{"one-op", 1, 0},
		{"mid", 257, 0},
		{"full", len(ops), 0},
		{"mid-many-checkpoints", 500, 8 << 10},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "mid.rexp")
			o := durableOpts(path, DurabilityOnCommit)
			o.CheckpointBytes = tc.ckptBytes
			tr, err := Open(o)
			if err != nil {
				t.Fatal(err)
			}
			applyOps(t, tr, ops[:tc.abandonAt])
			tr.Abandon()
			re := requireRecovered(t, path, ops, tc.abandonAt)

			// A clean close must leave the file reopenable without any
			// durability policy, with the identical contents (the durable
			// and legacy formats are the same page file).
			if err := re.Close(); err != nil {
				t.Fatal(err)
			}
			legacy, err := Open(fileOpts(path))
			if err != nil {
				t.Fatalf("legacy reopen after clean close: %v", err)
			}
			defer legacy.Close()
			ref := memReference(t, ops[:tc.abandonAt])
			now := crashFinalNow()
			requireSameFingerprint(t, fingerprintIndex(t, legacy, now), fingerprintIndex(t, ref, now), "legacy reopen")
		})
	}
}

// TestDurableRecoverTornWALTail damages the WAL tail after a crash —
// truncation and a flipped bit, the two shapes a torn append leaves —
// and requires recovery to come back as a consistent prefix of the
// stream: everything before the damage, nothing after it, and never an
// error or a mixed state.
func TestDurableRecoverTornWALTail(t *testing.T) {
	ops := crashOps(crashOpsN, 7)
	cases := []struct {
		name   string
		mangle func(t *testing.T, walPath string)
	}{
		{"truncated", func(t *testing.T, walPath string) {
			st, err := os.Stat(walPath)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(walPath, st.Size()*2/3); err != nil {
				t.Fatal(err)
			}
		}},
		{"bitflip", func(t *testing.T, walPath string) {
			data, err := os.ReadFile(walPath)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)/2] ^= 0x01
			if err := os.WriteFile(walPath, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "torn.rexp")
			o := durableOpts(path, DurabilityBatched)
			o.SyncEvery = time.Hour // no timed fsync: the tail is only OS-flushed
			tr, err := Open(o)
			if err != nil {
				t.Fatal(err)
			}
			applyOps(t, tr, ops)
			tr.Abandon()
			tc.mangle(t, WALPath(path))

			re, err := Open(durableOpts(path, DurabilityBatched))
			if err != nil {
				t.Fatalf("recovery open: %v", err)
			}
			defer re.Close()
			k := recoveredOpCount(re)
			if k <= 0 || k >= len(ops) {
				t.Fatalf("recovered %d ops, want a strict prefix of %d", k, len(ops))
			}
			if err := re.Validate(); err != nil {
				t.Fatalf("recovered tree invalid: %v", err)
			}
			ref := memReference(t, ops[:k])
			now := crashFinalNow()
			requireSameFingerprint(t, fingerprintIndex(t, re, now), fingerprintIndex(t, ref, now), "torn-tail recovery")
		})
	}
}

// TestDurableCloseFaultRecovery fails Close at every step of the
// checkpoint protocol — appending the page images, fsyncing the WAL,
// writing the page file (torn and erroring), fsyncing the page file,
// and truncating the WAL — and requires: Close reports the error, a
// second Close repeats it (idempotence), and reopening recovers the
// full acknowledged state.
func TestDurableCloseFaultRecovery(t *testing.T) {
	ops := crashOps(crashOpsN, 11)
	errWAL := errors.New("injected wal fault")
	cases := []struct {
		name string
		wrap bool // install a FaultStore under the tree
		prep func(ctl *walHookCtl, fault *storage.FaultStore)
	}{
		// Crash mid-checkpoint, before the images are durable: the WAL
		// keeps an incomplete image set (ignored) plus the logical tail.
		{"ckpt-image-append", false, func(ctl *walHookCtl, _ *storage.FaultStore) {
			ctl.arm("append", 1, errWAL)
		}},
		// Crash between the image writes and their fsync.
		{"wal-sync", false, func(ctl *walHookCtl, _ *storage.FaultStore) {
			ctl.arm("sync", 0, errWAL)
		}},
		// Torn page write while flushing the pool: the images are already
		// durable and must win over the half-written page.
		{"torn-page-write", true, func(_ *walHookCtl, f *storage.FaultStore) {
			f.FailWrites = true
			f.Kind = storage.FaultTornWrite
			f.TornBytes = 512
			f.Arm(1)
		}},
		// Plain write error during the pool flush.
		{"page-write-error", true, func(_ *walHookCtl, f *storage.FaultStore) {
			f.FailWrites = true
			f.Arm(1)
		}},
		// The page file's fsync fails after the flush.
		{"page-sync", true, func(_ *walHookCtl, f *storage.FaultStore) {
			f.FailSyncs = true
			f.Arm(1)
		}},
		// Crash mid-WAL-truncate: the page file already holds the state,
		// the WAL still holds the full image set; re-applying it is
		// idempotent.
		{"wal-reset", false, func(ctl *walHookCtl, _ *storage.FaultStore) {
			ctl.arm("reset", 0, errWAL)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "close.rexp")
			o := durableOpts(path, DurabilityOnCommit)
			ctl := &walHookCtl{}
			o.testWALHook = ctl.hook
			var fault *storage.FaultStore
			if tc.wrap {
				o.testWrapStore = func(s storage.Store) storage.Store {
					fault = &storage.FaultStore{Inner: s}
					return fault
				}
			}
			tr, err := Open(o)
			if err != nil {
				t.Fatal(err)
			}
			applyOps(t, tr, ops)
			tc.prep(ctl, fault)

			first := tr.Close()
			if first == nil {
				t.Fatal("Close succeeded with the fault armed")
			}
			if second := tr.Close(); second != first {
				t.Fatalf("second Close returned %v, want the first call's %v", second, first)
			}

			requireRecovered(t, path, ops, len(ops))
		})
	}
}

// TestDurableInDoubtOpProbed crashes in the middle of an operation —
// after its WAL append, during the commit fsync — so the caller saw an
// error but the record may still be durable.  Recovery must land on
// one of the two consistent outcomes (op absent or op fully applied),
// never in between.
func TestDurableInDoubtOpProbed(t *testing.T) {
	ops := crashOps(crashOpsN, 13)
	m := 120
	for ops[m].del { // the in-doubt op is an update, so Get can probe it
		m++
	}
	path := filepath.Join(t.TempDir(), "doubt.rexp")
	o := durableOpts(path, DurabilityOnCommit)
	ctl := &walHookCtl{}
	o.testWALHook = ctl.hook
	errWAL := errors.New("injected wal fault")
	tr, err := Open(o)
	if err != nil {
		t.Fatal(err)
	}
	applyOps(t, tr, ops[:m])
	ctl.arm("sync", 0, errWAL)
	if err := tr.Update(ops[m].id, ops[m].p, ops[m].now); !errors.Is(err, errWAL) {
		t.Fatalf("update with failing commit returned %v, want %v", err, errWAL)
	}
	tr.Abandon()

	re, err := Open(durableOpts(path, DurabilityOnCommit))
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer re.Close()
	k := recoveredOpCount(re)
	if k != m && k != m+1 {
		t.Fatalf("recovered %d ops, want %d (op lost) or %d (op durable)", k, m, m+1)
	}
	if err := re.Validate(); err != nil {
		t.Fatal(err)
	}
	ref := memReference(t, ops[:k])
	now := crashFinalNow()
	requireSameFingerprint(t, fingerprintIndex(t, re, now), fingerprintIndex(t, ref, now), "in-doubt recovery")
}

// TestDurableFreshCreateCrashReinitializes fabricates what a crash
// during a fresh tree's very first checkpoint leaves behind — a dirty
// page file without tree metadata and an empty WAL — and requires Open
// to recreate the index from scratch (nothing was ever acknowledged).
func TestDurableFreshCreateCrashReinitializes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fresh.rexp")
	fs, err := storage.CreateFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.MarkDirty(); err != nil {
		t.Fatal(err)
	}
	if err := fs.CloseKeepDirty(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(WALPath(path), nil, 0o644); err != nil {
		t.Fatal(err)
	}

	tr, err := Open(durableOpts(path, DurabilityOnCommit))
	if err != nil {
		t.Fatalf("open after first-checkpoint crash: %v", err)
	}
	if tr.Len() != 0 {
		t.Fatalf("reinitialized tree has %d reports, want 0", tr.Len())
	}
	p := Point{Pos: Vec{10, 20}, Vel: Vec{1, 1}, Time: 1, Expires: 100}
	if err := tr.Update(42, p, 1); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(durableOpts(path, DurabilityOnCommit))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if _, ok := re.Get(42, 1); !ok {
		t.Fatal("report written after reinitialization did not survive")
	}
}

// TestDurableChecksumFailureNeverSilent flips a bit in a cold page and
// requires every open path — crash recovery and the legacy clean-file
// open — to fail with storage.ErrChecksum rather than answer queries
// from the corrupt page.
func TestDurableChecksumFailureNeverSilent(t *testing.T) {
	ops := crashOps(crashOpsN, 17)

	t.Run("unclean", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "bad.rexp")
		tr, err := Open(durableOpts(path, DurabilityOnCommit))
		if err != nil {
			t.Fatal(err)
		}
		applyOps(t, tr, ops)
		tr.Abandon()
		// Flip a bit in every data page: whichever pages recovery walks
		// (metadata aside), the corruption must surface.
		for id := 1; id < pageFileCount(t, path); id++ {
			flipPageByte(t, path, id)
		}
		_, err = Open(durableOpts(path, DurabilityOnCommit))
		if !errors.Is(err, storage.ErrChecksum) {
			t.Fatalf("recovery of corrupt file returned %v, want %v", err, storage.ErrChecksum)
		}
	})

	t.Run("clean", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "bad.rexp")
		tr, err := Open(durableOpts(path, DurabilityOnCommit))
		if err != nil {
			t.Fatal(err)
		}
		applyOps(t, tr, ops[:100])
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		for id := 1; id < pageFileCount(t, path); id++ {
			flipPageByte(t, path, id)
		}
		if _, err := Open(fileOpts(path)); !errors.Is(err, storage.ErrChecksum) {
			t.Fatalf("legacy open of corrupt file returned %v, want %v", err, storage.ErrChecksum)
		}
		if _, err := Open(durableOpts(path, DurabilityOnCommit)); !errors.Is(err, storage.ErrChecksum) {
			t.Fatalf("durable open of corrupt file returned %v, want %v", err, storage.ErrChecksum)
		}
	})
}

// TestDurabilityNoneRefusesDirtyFile: a file left dirty by a crashed
// durable session must not be silently opened against its stale base.
func TestDurabilityNoneRefusesDirtyFile(t *testing.T) {
	ops := crashOps(60, 19)
	path := filepath.Join(t.TempDir(), "dirty.rexp")
	tr, err := Open(durableOpts(path, DurabilityOnCommit))
	if err != nil {
		t.Fatal(err)
	}
	applyOps(t, tr, ops)
	tr.Abandon()

	if _, err := Open(fileOpts(path)); !errors.Is(err, errNotDurable) {
		t.Fatalf("non-durable open of dirty file returned %v, want %v", err, errNotDurable)
	}

	// Recover durably and close cleanly; then the legacy open works.
	re := requireRecovered(t, path, ops, len(ops))
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	legacy, err := Open(fileOpts(path))
	if err != nil {
		t.Fatalf("legacy open after clean close: %v", err)
	}
	legacy.Close()
}

// TestDurableDoubleClose: Close is idempotent on the success path too.
func TestDurableDoubleClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dc.rexp")
	tr, err := Open(durableOpts(path, DurabilityOnCommit))
	if err != nil {
		t.Fatal(err)
	}
	applyOps(t, tr, crashOps(40, 23))
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("second Close returned %v, want nil", err)
	}
}

// TestDurableRecoveryDropsExpired: replaying the WAL tail skips
// reports that expired before the recovered clock — they are invisible
// to queries and would only be purged again — and counts them.
func TestDurableRecoveryDropsExpired(t *testing.T) {
	path := filepath.Join(t.TempDir(), "exp.rexp")
	tr, err := Open(durableOpts(path, DurabilityOnCommit))
	if err != nil {
		t.Fatal(err)
	}
	now := 1.0
	for id := uint32(1); id <= 50; id++ {
		p := Point{Pos: Vec{float64(id), float64(id)}, Vel: Vec{1, 0}, Time: now, Expires: now + 0.4}
		if err := tr.Update(id, p, now); err != nil {
			t.Fatal(err)
		}
		now += 0.001
	}
	now = 5.0
	for id := uint32(101); id <= 160; id++ {
		p := Point{Pos: Vec{float64(id), 500}, Vel: Vec{0, 1}, Time: now, Expires: now + 1000}
		if err := tr.Update(id, p, now); err != nil {
			t.Fatal(err)
		}
		now += 0.001
	}
	final := now
	tr.Abandon()

	re, err := Open(durableOpts(path, DurabilityOnCommit))
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer re.Close()
	m := re.Metrics()
	if m.RecoveryDroppedExpired != 50 {
		t.Fatalf("RecoveryDroppedExpired = %d, want 50", m.RecoveryDroppedExpired)
	}
	if got := re.Len(); got != 60 {
		t.Fatalf("recovered %d reports, want the 60 live ones", got)
	}
	if _, ok := re.Get(1, final); ok {
		t.Fatal("expired report resurfaced after recovery")
	}
	if _, ok := re.Get(101, final); !ok {
		t.Fatal("live report missing after recovery")
	}
	if err := re.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestDurableDoubleCrashTornTail drills the double-crash combination:
// the first crash leaves a torn WAL tail (garbage after the valid
// frames), then recovery itself crashes after its checkpoint's images
// and page flush are durable but before the WAL is truncated.  The
// recovery checkpoint must be reachable by the next scan — recovery
// cuts the torn tail before appending — or the final open would replay
// the old records over a page file the first recovery already rewrote.
func TestDurableDoubleCrashTornTail(t *testing.T) {
	ops := crashOps(crashOpsN, 37)
	path := filepath.Join(t.TempDir(), "double.rexp")
	tr, err := Open(durableOpts(path, DurabilityOnCommit))
	if err != nil {
		t.Fatal(err)
	}
	applyOps(t, tr, ops)
	tr.Abandon()

	// Torn tail: garbage bytes after the valid frames, as a crash
	// mid-append leaves them.
	f, err := os.OpenFile(WALPath(path), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	garbage := make([]byte, 64)
	for i := range garbage {
		garbage[i] = 0xAB
	}
	if _, err := f.Write(garbage); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// First recovery attempt dies between the checkpoint's image fsync
	// and the WAL truncation: the pool flush and page-file sync already
	// ran, so the page file holds the recovered state.
	o := durableOpts(path, DurabilityOnCommit)
	ctl := &walHookCtl{}
	ctl.arm("reset", 0, errors.New("injected crash"))
	o.testWALHook = ctl.hook
	if _, err := Open(o); err == nil {
		t.Fatal("recovery with a failing WAL truncate should fail")
	}

	// The recovery checkpoint must now be the log's last complete one.
	a, err := wal.Analyze(WALPath(path))
	if err != nil {
		t.Fatal(err)
	}
	if a.Torn {
		t.Fatal("WAL still ends in a torn tail after a recovery attempt")
	}
	if a.Images == nil {
		t.Fatal("recovery checkpoint unreachable: no complete image set after the torn tail")
	}
	if len(a.Tail) != 0 {
		t.Fatalf("%d logical records survive past the recovery checkpoint, want 0", len(a.Tail))
	}

	requireRecovered(t, path, ops, len(ops))
}

// TestDurableFailedMutationRolledBack: a mutation that fails after its
// WAL record was appended must roll the record back — otherwise a later
// successful operation's commit fsync makes it durable and recovery
// replays an operation whose caller observed an error.
func TestDurableFailedMutationRolledBack(t *testing.T) {
	ops := crashOps(crashOpsN, 41)
	path := filepath.Join(t.TempDir(), "rollback.rexp")
	o := durableOpts(path, DurabilityOnCommit)
	var fault *storage.FaultStore
	o.testWrapStore = func(s storage.Store) storage.Store {
		fault = &storage.FaultStore{Inner: s}
		return fault
	}
	tr, err := Open(o)
	if err != nil {
		t.Fatal(err)
	}
	m := 200
	applyOps(t, tr, ops[:m])

	// Arm every storage operation: the next op that touches the store
	// (a split's allocation, an evicted page's read) fails mid-mutation,
	// after its record was appended.
	fault.FailReads, fault.FailWrites = true, true
	fault.Arm(1)
	failedAt := -1
	for i := m; i < len(ops); i++ {
		prev := tr.wal.Size()
		op := ops[i]
		var err error
		if op.del {
			_, err = tr.Delete(op.id, op.now)
		} else {
			err = tr.Update(op.id, op.p, op.now)
		}
		if err != nil {
			if !errors.Is(err, storage.ErrInjected) {
				t.Fatalf("op %d failed with %v, want the injected fault", i, err)
			}
			if got := tr.wal.Size(); got != prev {
				t.Fatalf("WAL is %d bytes after the failed op, want rollback to %d", got, prev)
			}
			failedAt = i
			break
		}
	}
	if failedAt < 0 {
		t.Fatal("no operation tripped the armed fault")
	}
	fault.Disarm()

	// One more acknowledged operation: its commit fsync is the moment
	// the orphaned record would have become durable.
	lastNow := crashFinalNow() + 1
	last := crashOp{id: 9000, p: Point{
		Pos: Vec{5, 5}, Vel: Vec{1, 1}, Time: lastNow, Expires: lastNow + 1000,
	}, now: lastNow}
	if err := tr.Update(last.id, last.p, last.now); err != nil {
		t.Fatal(err)
	}
	tr.Abandon()

	// The recovered index must hold every acknowledged op and nothing
	// of the failed one.
	re, err := Open(durableOpts(path, DurabilityOnCommit))
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer re.Close()
	if err := re.Validate(); err != nil {
		t.Fatalf("recovered tree invalid: %v", err)
	}
	refOps := append(append([]crashOp{}, ops[:failedAt]...), last)
	ref := memReference(t, refOps)
	requireSameFingerprint(t, fingerprintIndex(t, re, lastNow), fingerprintIndex(t, ref, lastNow), "rollback recovery")
}

// TestShardedDurableCrashRecovery kills every shard of a durable
// sharded index mid-stream and requires OpenSharded to recover all of
// them (concurrently) back to the single-tree reference, with the
// durability policy recorded in the manifest.
func TestShardedDurableCrashRecovery(t *testing.T) {
	base := filepath.Join(t.TempDir(), "s.rexp")
	o := durableOpts(base, DurabilityOnCommit)
	so := ShardedOptions{Options: o, Shards: 3}
	s, err := OpenSharded(so)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Open(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	batch := testWorkload(400, 29)
	for _, ix := range []movingIndex{s, ref} {
		if err := ix.UpdateBatch(batch, 1); err != nil {
			t.Fatal(err)
		}
		for _, id := range []uint32{3, 77, 190, 301} {
			if _, err := ix.Delete(id, 1.5); err != nil {
				t.Fatal(err)
			}
		}
	}
	now := 2.0
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 200; i++ {
		now += 0.01
		id := uint32(rng.Intn(400) + 1)
		p := Point{
			Pos:     Vec{rng.Float64() * 1000, rng.Float64() * 1000},
			Vel:     Vec{rng.Float64()*4 - 2, rng.Float64()*4 - 2},
			Time:    now,
			Expires: now + 500,
		}
		if err := s.Update(id, p, now); err != nil {
			t.Fatal(err)
		}
		if err := ref.Update(id, p, now); err != nil {
			t.Fatal(err)
		}
	}
	s.Abandon()

	re, err := OpenSharded(so)
	if err != nil {
		t.Fatalf("sharded recovery open: %v", err)
	}
	defer re.Close()
	requireSameFingerprint(t, fingerprintIndex(t, re, now), fingerprintIndex(t, ref, now), "recovered sharded index")
	if err := re.Validate(); err != nil {
		t.Fatal(err)
	}

	man, found, err := manifest.Read(manifest.Path(base))
	if err != nil || !found {
		t.Fatalf("manifest read: found=%v err=%v", found, err)
	}
	if man.Durability != "on-commit" {
		t.Fatalf("manifest durability %q, want on-commit", man.Durability)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	if err := re.Close(); err != nil {
		t.Fatalf("second sharded Close returned %v, want nil", err)
	}
}
