package rexptree

import (
	"testing"

	"rexptree/internal/core"
	"rexptree/internal/experiments"
	"rexptree/internal/hull"
	"rexptree/internal/workload"
)

// Ablation benchmarks for the design choices the paper calls out.
// Each runs the default network workload (ExpT = 2·UI) against a pair
// of configurations and reports their search and update I/O as custom
// metrics, so the effect of the single toggled choice is visible in
// one line.

func ablationWorkload(b *testing.B) workload.Params {
	return workload.Params{Seed: 5}.Scale(benchScale(b))
}

func runAblation(b *testing.B, name string, cfg core.Config) {
	b.Helper()
	m, err := experiments.Run(experiments.TreeConfig{Label: name, Core: cfg}, ablationWorkload(b))
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("%-28s search=%.2f update=%.2f pages=%.0f", name, m.SearchIO, m.UpdateIO, m.IndexPages)
	b.ReportMetric(m.SearchIO, name+"_searchIO")
	b.ReportMetric(m.UpdateIO, name+"_updateIO")
}

func rexpBase(seed int64) core.Config {
	return core.Config{
		Dims: 2, BRKind: hull.KindNearOptimal,
		ExpireAware: true, AlgsUseExp: true, Seed: seed,
	}
}

// BenchmarkAblationOverlapHeuristic — §4.2.2: the R^exp-tree drops the
// R*-tree's quadratic overlap-enlargement criterion from ChooseSubtree
// because it "does not improve query performance".  Compare both.
func BenchmarkAblationOverlapHeuristic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if i > 0 {
			continue
		}
		runAblation(b, "linear_choose", rexpBase(5))
		withOverlap := rexpBase(5)
		withOverlap.UseOverlapHeuristic = true
		runAblation(b, "overlap_choose", withOverlap)
	}
}

// BenchmarkAblationForcedReinsert — the R*-tree's forced reinsertion
// (RemoveTop, used by both the TPR- and R^exp-trees) versus immediate
// splitting.
func BenchmarkAblationForcedReinsert(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if i > 0 {
			continue
		}
		runAblation(b, "with_reinsert", rexpBase(5))
		noReins := rexpBase(5)
		noReins.ReinsertFrac = -1
		runAblation(b, "no_reinsert", noReins)
	}
}

// BenchmarkAblationAutoTune — §4.2.3: the self-tuned horizon
// H = UI + W versus a frozen (and deliberately wrong, 4x too large)
// initial estimate.
func BenchmarkAblationAutoTune(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if i > 0 {
			continue
		}
		runAblation(b, "auto_tune", rexpBase(5))
		frozen := rexpBase(5)
		frozen.DisableAutoTune = true
		frozen.InitialUI = 240
		runAblation(b, "frozen_horizon", frozen)
	}
}

// BenchmarkAblationBRExpRecording — §5.2: recording expiration times
// in internal entries costs fan-out and rarely pays off.
func BenchmarkAblationBRExpRecording(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if i > 0 {
			continue
		}
		runAblation(b, "no_brexp", rexpBase(5))
		withExp := rexpBase(5)
		withExp.StoreBRExp = true
		runAblation(b, "with_brexp", withExp)
	}
}

// BenchmarkAblationLazyPurge — §4.3/§5.4: the R^exp-tree's lazy purge
// versus leaving expired entries in place entirely (a TPR-tree that
// merely filters query results would behave like the latter).
func BenchmarkAblationLazyPurge(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if i > 0 {
			continue
		}
		runAblation(b, "lazy_purge", rexpBase(5))
		runAblation(b, "no_purge_tpr", core.Config{Dims: 2, BRKind: hull.KindConservative, Seed: 5})
	}
}
