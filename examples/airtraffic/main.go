// Airtraffic: speed-dependent expiration (the paper's ExpD policy).
// Fast aircraft invalidate their positional reports sooner than slow
// general aviation: each report is trusted for a fixed *distance*
// flown, not a fixed time, so expiration time = now + ExpD / speed.
// The example also compares static vs near-optimal bounding rectangles
// on this workload — the one situation where static rectangles are
// competitive (paper §5.3).
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"rexptree"
)

const (
	expD    = 90.0 // each report is good for 90 km of travel
	sectors = 1000.0
)

type aircraft struct {
	id    uint32
	pos   [2]float64
	speed float64 // km/min
	hdg   float64
}

func run(opts rexptree.Options, fleet []aircraft) (*rexptree.Tree, float64, error) {
	tree, err := rexptree.Open(opts)
	if err != nil {
		return nil, 0, err
	}
	rng := rand.New(rand.NewSource(3))
	now := 0.0
	for tick := 0; tick < 120; tick++ {
		now = float64(tick)
		for i := range fleet {
			a := &fleet[i]
			// Aircraft adjust heading occasionally and report every
			// ~6 minutes.
			if rng.Float64() > 1.0/6 {
				continue
			}
			a.hdg += (rng.Float64() - 0.5) * 0.8
			vel := [2]float64{a.speed * math.Cos(a.hdg), a.speed * math.Sin(a.hdg)}
			ttl := expD / a.speed
			err := tree.Update(a.id, rexptree.Point{
				Pos:     rexptree.Vec{a.pos[0], a.pos[1]},
				Vel:     rexptree.Vec{vel[0], vel[1]},
				Time:    now,
				Expires: now + ttl,
			}, now)
			if err != nil {
				return nil, 0, err
			}
		}
		for i := range fleet {
			a := &fleet[i]
			a.pos[0] += a.speed * math.Cos(a.hdg)
			a.pos[1] += a.speed * math.Sin(a.hdg)
			for d := 0; d < 2; d++ {
				if a.pos[d] < 0 {
					a.pos[d] += sectors
				}
				if a.pos[d] > sectors {
					a.pos[d] -= sectors
				}
			}
		}
	}
	return tree, now, nil
}

func main() {
	mkFleet := func() []aircraft {
		rng := rand.New(rand.NewSource(1)) // identical fleet for both runs
		fleet := make([]aircraft, 3000)
		for i := range fleet {
			speed := 2.0 + rng.Float64()*13 // 120..900 km/h
			if i%3 == 0 {
				speed = 1.5 + rng.Float64()*2 // slow GA traffic
			}
			fleet[i] = aircraft{
				id:    uint32(i),
				pos:   [2]float64{rng.Float64() * sectors, rng.Float64() * sectors},
				speed: speed,
				hdg:   rng.Float64() * 2 * math.Pi,
			}
		}
		return fleet
	}

	for _, cfg := range []struct {
		name string
		kind rexptree.BoundingKind
	}{
		{"near-optimal", rexptree.NearOptimal},
		{"static", rexptree.Static},
	} {
		opts := rexptree.DefaultOptions()
		opts.Bounding = cfg.kind
		opts.Seed = 5
		tree, now, err := run(opts, mkFleet())
		if err != nil {
			log.Fatal(err)
		}
		// Sector sweep: predicted traffic in a 100x100 km sector over
		// the next 3 minutes.
		tree.ResetIOStats()
		sector := rexptree.Rect{Lo: rexptree.Vec{450, 450}, Hi: rexptree.Vec{550, 550}}
		res, err := tree.Window(sector, now, now+3, now)
		if err != nil {
			log.Fatal(err)
		}
		s := tree.Stats()
		fmt.Printf("%-13s: %3d aircraft predicted in sector; query cost %d page reads; index %d pages\n",
			cfg.name, len(res), s.Reads, s.Pages)

		// Fast movers expire quickly: count reports still trusted 20
		// minutes from now.
		world := rexptree.Rect{Hi: rexptree.Vec{sectors, sectors}}
		later, err := tree.Timeslice(world, now+20, now)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-13s: %d of %d reports still trusted at t+20 (fast aircraft expired first)\n",
			cfg.name, len(later), s.LeafEntries)
		tree.Close()
	}
}
