// Fleet: a delivery fleet on the paper's road-network scenario.
// Trucks report position and velocity as they accelerate onto and
// brake off highway legs between depots.  A dispatcher asks window
// queries ("which trucks pass the construction zone in the next
// quarter hour?") and moving queries ("who can rendezvous with truck
// 17 on its way?").
package main

import (
	"fmt"
	"log"

	"rexptree"
	"rexptree/internal/workload"
)

func main() {
	tree, err := rexptree.Open(rexptree.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	defer tree.Close()

	// Drive the index with the paper's own network workload generator:
	// 2000 trucks between 20 depots, reports expiring after 2·UI.
	gen, err := workload.NewGenerator(workload.Params{
		Seed:       11,
		Objects:    2000,
		Insertions: 30000,
		UI:         60,
	})
	if err != nil {
		log.Fatal(err)
	}

	now := 0.0
	trucks := map[uint32]rexptree.Point{}
	for {
		op, ok := gen.Next()
		if !ok {
			break
		}
		now = op.Time
		if op.Kind != workload.OpInsert {
			continue // Tree.Update replaces previous reports itself.
		}
		at := op.Point.At(op.Time)
		p := rexptree.Point{
			Pos:     rexptree.Vec{at[0], at[1]},
			Vel:     rexptree.Vec{op.Point.Vel[0], op.Point.Vel[1]},
			Time:    op.Time,
			Expires: op.Point.TExp,
		}
		if err := tree.Update(op.OID, p, now); err != nil {
			log.Fatal(err)
		}
		trucks[op.OID] = p
	}
	s := tree.Stats()
	fmt.Printf("fleet indexed: %d reports live, height %d, %d pages (UI estimate %.0f min)\n",
		s.LeafEntries, s.Height, s.Pages, s.UIEstimate)

	// Window query: a 30x30 km construction zone, next 15 minutes.
	zone := rexptree.Rect{Lo: rexptree.Vec{480, 480}, Hi: rexptree.Vec{510, 510}}
	passing, err := tree.Window(zone, now, now+15, now)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d trucks pass the zone within 15 minutes\n", len(passing))

	// Moving query: a 20-km box riding along truck 17's predicted path
	// for the next 10 minutes.
	if t17, ok := tree.Get(17, now); ok {
		box := func(c rexptree.Vec) rexptree.Rect {
			return rexptree.Rect{
				Lo: rexptree.Vec{c[0] - 10, c[1] - 10},
				Hi: rexptree.Vec{c[0] + 10, c[1] + 10},
			}
		}
		nearby, err := tree.Moving(box(t17.At(now)), box(t17.At(now+10)), now, now+10, now)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d trucks can rendezvous with truck 17 (heading %.2f,%.2f km/min)\n",
			len(nearby), t17.Vel[0], t17.Vel[1])
	} else {
		fmt.Println("truck 17 has gone silent; its report expired")
	}

	// Timeslice: fleet snapshot five minutes out.
	world := rexptree.Rect{Hi: rexptree.Vec{1000, 1000}}
	snap, err := tree.Timeslice(world, now+5, now)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("predicted fleet positions at t+5: %d trucks still trusted\n", len(snap))
}
