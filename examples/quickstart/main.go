// Quickstart: index a handful of moving objects and run the three
// query types of the paper — timeslice, window and moving.
package main

import (
	"fmt"
	"log"

	"rexptree"
)

func main() {
	// An expiration-aware index with the paper's recommended settings
	// (near-optimal time-parameterized bounding rectangles).
	tree, err := rexptree.Open(rexptree.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	defer tree.Close()

	// Three vehicles reporting at time 0.  Positions are in km,
	// velocities in km/min, and each report expires: if a vehicle does
	// not report again before its deadline, the index forgets it.
	reports := []struct {
		id uint32
		p  rexptree.Point
	}{
		{1, rexptree.Point{Pos: rexptree.Vec{100, 200}, Vel: rexptree.Vec{1.5, 0}, Time: 0, Expires: 120}},
		{2, rexptree.Point{Pos: rexptree.Vec{102, 205}, Vel: rexptree.Vec{0, -1}, Time: 0, Expires: 120}},
		{3, rexptree.Point{Pos: rexptree.Vec{900, 900}, Vel: rexptree.Vec{-3, -3}, Time: 0, Expires: 15}},
	}
	for _, r := range reports {
		if err := tree.Update(r.id, r.p, 0); err != nil {
			log.Fatal(err)
		}
	}

	// Type 1 — timeslice: who is predicted to be near (110, 200) at
	// time 10?
	region := rexptree.Rect{Lo: rexptree.Vec{105, 195}, Hi: rexptree.Vec{125, 210}}
	res, err := tree.Timeslice(region, 10, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("timeslice @t=10:")
	for _, r := range res {
		fmt.Printf("  object %d at %.1f\n", r.ID, r.Point.At(10))
	}

	// Type 2 — window: who crosses the region at any time in [5, 30]?
	res, err = tree.Window(region, 5, 30, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("window @[5,30]:")
	for _, r := range res {
		fmt.Printf("  object %d\n", r.ID)
	}

	// Type 3 — moving: a query region that travels with vehicle 1.
	r1 := rexptree.Rect{Lo: rexptree.Vec{110, 190}, Hi: rexptree.Vec{120, 210}}
	r2 := rexptree.Rect{Lo: rexptree.Vec{140, 190}, Hi: rexptree.Vec{150, 210}}
	res, err = tree.Moving(r1, r2, 10, 30, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("moving @[10,30]:")
	for _, r := range res {
		fmt.Printf("  object %d\n", r.ID)
	}

	// Expiration: object 3 stops reporting.  At time 20 its report
	// (expiry 15) is stale, and the index no longer returns it.
	world := rexptree.Rect{Lo: rexptree.Vec{0, 0}, Hi: rexptree.Vec{1000, 1000}}
	res, err = tree.Timeslice(world, 20, 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alive at t=20: %d objects (object 3 expired)\n", len(res))

	s := tree.Stats()
	fmt.Printf("index: height %d, %d pages, %d entries\n", s.Height, s.Pages, s.LeafEntries)
}
