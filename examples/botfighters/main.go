// Botfighters: the paper's motivating location-based game.  Players
// roam a city and can "shoot" other players within range of their
// predicted position.  Phones that go silent (switched off, out of
// coverage) simply stop reporting: their last position expires and the
// game must stop matching them — exactly the implicit-update problem
// the R^exp-tree solves.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"rexptree"
)

const (
	players   = 2000
	reportTTL = 8.0  // a position report is trusted for 8 minutes
	shotRange = 0.25 // kilometers
	citySide  = 20.0 // 20 x 20 km city
)

type player struct {
	id     uint32
	pos    [2]float64
	vel    [2]float64
	online bool
}

func main() {
	opts := rexptree.DefaultOptions()
	opts.World = rexptree.Rect{Hi: rexptree.Vec{citySide, citySide}}
	tree, err := rexptree.Open(opts)
	if err != nil {
		log.Fatal(err)
	}
	defer tree.Close()

	rng := rand.New(rand.NewSource(7))
	roster := make([]*player, players)
	for i := range roster {
		roster[i] = &player{
			id:     uint32(i),
			pos:    [2]float64{rng.Float64() * citySide, rng.Float64() * citySide},
			online: true,
		}
	}

	// Simulate 60 minutes in 1-minute ticks.  Each minute a fraction
	// of players report; a few go dark without notice.
	now := 0.0
	for tick := 0; tick < 60; tick++ {
		now = float64(tick)
		for _, p := range roster {
			if !p.online || rng.Float64() > 0.25 {
				continue // reports every ~4 minutes
			}
			// Walk or ride: 0.06..0.6 km/min.
			speed := 0.06 + rng.Float64()*0.54
			angle := rng.Float64() * 2 * math.Pi
			p.vel = [2]float64{speed * math.Cos(angle), speed * math.Sin(angle)}
			err := tree.Update(p.id, rexptree.Point{
				Pos:     rexptree.Vec{p.pos[0], p.pos[1]},
				Vel:     rexptree.Vec{p.vel[0], p.vel[1]},
				Time:    now,
				Expires: now + reportTTL,
			}, now)
			if err != nil {
				log.Fatal(err)
			}
		}
		// Phones drop off silently.
		if tick%10 == 9 {
			for i := 0; i < players/100; i++ {
				roster[rng.Intn(players)].online = false
			}
		}
		// Advance true positions (bounced at the city limits).
		for _, p := range roster {
			for d := 0; d < 2; d++ {
				p.pos[d] += p.vel[d]
				if p.pos[d] < 0 || p.pos[d] > citySide {
					p.vel[d] = -p.vel[d]
					p.pos[d] += 2 * p.vel[d]
				}
			}
		}
	}

	// A player looks for targets: who is predicted to be within shot
	// range in the next half minute?  Expired (dark) players are never
	// offered as targets.
	shooter := roster[42]
	r := rexptree.Rect{
		Lo: rexptree.Vec{shooter.pos[0] - shotRange, shooter.pos[1] - shotRange},
		Hi: rexptree.Vec{shooter.pos[0] + shotRange, shooter.pos[1] + shotRange},
	}
	targets, err := tree.Window(r, now, now+0.5, now)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("player %d at (%.2f, %.2f) can shoot %d nearby players\n",
		shooter.id, shooter.pos[0], shooter.pos[1], len(targets))
	for _, t := range targets {
		if t.ID == shooter.id {
			continue
		}
		fmt.Printf("  target %4d predicted at (%.2f, %.2f)\n", t.ID, t.Point.At(now)[0], t.Point.At(now)[1])
	}

	// Game-wide stats: silent players age out on their own.
	world := rexptree.Rect{Hi: rexptree.Vec{citySide, citySide}}
	alive, err := tree.Timeslice(world, now, now)
	if err != nil {
		log.Fatal(err)
	}
	s := tree.Stats()
	fmt.Printf("matchmaking sees %d active players; index: %d entries, %d pages, height %d\n",
		len(alive), s.LeafEntries, s.Pages, s.Height)
}
