package rexptree

// Live resharding: replacing a ShardedTree's shard set — count, policy
// or speed bands — while the index keeps serving reads and writes.
//
// The engine runs in three phases:
//
//	scan      A snapshot of every current shard is exported over the
//	          lock-free read path (no write stall) at a pinned clock.
//	backfill  The new generation's shards are built beside the old
//	          ones (same durability policy, next file generation) and
//	          the snapshot is bulk-loaded into them in small batches,
//	          each under the re-route lock.  From the moment the
//	          reshard is published, every Update/Delete/UpdateBatch is
//	          dual-applied: first to the current generation (whose
//	          result acknowledges the operation), then mirrored into
//	          the target.  Ids touched by the mirror are excluded from
//	          the backfill, so a delete during the window can never be
//	          resurrected by an older snapshot record.
//	cutover   Under the exclusive re-route lock (so no mutation is in
//	          flight) the two generations are verified object-for-
//	          object; the manifest is atomically rewritten to name the
//	          new generation — the commit point — and the generation
//	          pointer is swapped.  Readers migrate via the pointer;
//	          in-flight queries drain on the old generation's refcount
//	          before its trees are dropped and its files removed.
//
// A failure before the manifest rename aborts the reshard and leaves
// the index exactly as it was; a crash after the rename recovers into
// the new generation (every mirrored mutation and backfilled record is
// WAL-durable under the index's own durability policy).  Stale files
// from an interrupted run are swept by the next reshard — live or
// offline (internal/reshard.CleanStale).

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rexptree/internal/geom"
	"rexptree/internal/manifest"
	"rexptree/internal/obs"
	"rexptree/internal/reshard"
)

// ErrReshardInFlight is returned by Reshard/StartReshard when a live
// reshard is already running: only one can be in flight per index.
var ErrReshardInFlight = errors.New("rexptree: reshard already in flight")

// errReshardCanceled reports a reshard stopped by CancelReshard, Close
// or Abandon before its commit point.
var errReshardCanceled = errors.New("rexptree: live reshard canceled")

// errIndexClosed reports an operation on a closed index.
var errIndexClosed = errors.New("rexptree: index is closed")

// ReshardSpec describes the generation a live reshard should build.
type ReshardSpec struct {
	// Shards is the new shard count; 0 keeps the current count.
	Shards int

	// Policy is the new partition policy.
	Policy PartitionPolicy

	// SpeedBands are the new band boundaries under PartitionSpeed:
	// Shards-1 non-negative, non-descending values.  Empty derives
	// them from the drift detector's speed window when one is full, and
	// otherwise leaves the target self-tuning (it hash-routes until it
	// has observed TuneAfter speeds, like a fresh speed index).
	SpeedBands []float64
}

// AutoReshardOptions configures the drift detector of a speed-
// partitioned ShardedTree: a background loop that samples routing
// skew (largest shard over mean shard population) and re-route churn
// (re-routes per applied report) and starts a live reshard with
// quantile bands re-derived from recently observed speeds when either
// crosses its threshold.
type AutoReshardOptions struct {
	// Enabled turns the detector on; requires PartitionSpeed.
	Enabled bool

	// Interval is the sampling period (default 5s).
	Interval time.Duration

	// Window is how many recent speed observations the sliding window
	// keeps for re-deriving quantile bands (default 4096).  The
	// detector never triggers before the window has filled once.
	Window int

	// SkewThreshold triggers a reshard when the largest shard exceeds
	// this multiple of the mean shard population (e.g. 2.0); 0 disables
	// the skew trigger.
	SkewThreshold float64

	// ChurnThreshold triggers a reshard when the fraction of applied
	// reports that re-routed their object exceeds it (e.g. 0.2); 0
	// disables the churn trigger.
	ChurnThreshold float64

	// MinInterval is the cooldown between automatic reshards (default
	// 1m), so a persistent drift cannot reshard in a loop.
	MinInterval time.Duration
}

// Live-reshard phases, for ReshardStatus.
const (
	reshardPhaseScan int32 = iota
	reshardPhaseBackfill
	reshardPhaseCutover
)

var reshardPhaseNames = [...]string{"scan", "backfill", "cutover"}

// liveReshard is the shared state of one in-flight reshard: the target
// generation receiving the dual-applies, the set of object ids touched
// during the window (which the backfill must skip), and the abort
// flags.  It is published in ShardedTree.lr under the exclusive
// re-route lock, so every mutation observes a stable (generation,
// reshard) pair.
type liveReshard struct {
	spec   ReshardSpec
	target *generation

	phase                        atomic.Int32
	scanned, backfilled, applied atomic.Uint64

	// touched[id%64] is written under the same discipline as the
	// mutation that records it — the id's stripe for single-object
	// operations, the exclusive re-route lock for batches — and read
	// by the engine only under the exclusive lock, which conflicts
	// with both.
	touched [64]map[uint32]struct{}

	mu       sync.Mutex
	err      error // first mirror/engine failure; aborts the reshard
	canceled bool
}

func newLiveReshard(spec ReshardSpec, target *generation) *liveReshard {
	lr := &liveReshard{spec: spec, target: target}
	for i := range lr.touched {
		lr.touched[i] = make(map[uint32]struct{})
	}
	return lr
}

func (l *liveReshard) noteTouched(id uint32) {
	l.touched[id%uint32(len(l.touched))][id] = struct{}{}
}

func (l *liveReshard) isTouched(id uint32) bool {
	_, ok := l.touched[id%uint32(len(l.touched))][id]
	return ok
}

// fail records the first failure; the engine aborts at its next check.
func (l *liveReshard) fail(err error) {
	l.mu.Lock()
	if l.err == nil {
		l.err = err
	}
	l.mu.Unlock()
}

func (l *liveReshard) cancel() {
	l.mu.Lock()
	l.canceled = true
	l.mu.Unlock()
}

// aborted returns the reason this reshard must stop, or nil.
func (l *liveReshard) aborted() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if l.canceled {
		return errReshardCanceled
	}
	return nil
}

// ReshardStatus reports the state of the live-reshard engine.
type ReshardStatus struct {
	// InFlight is true while a reshard's dual-apply window is open.
	InFlight bool

	// Phase is "scan", "backfill" or "cutover" while in flight, else
	// "idle".
	Phase string

	// Generation is the current (serving) shard-file generation.
	Generation int

	// Shards and Policy describe the in-flight target when InFlight,
	// else the current generation.
	Shards int
	Policy string

	// Progress counters of the in-flight (or, for DualApplied, most
	// recent) reshard.
	Scanned     uint64
	Backfilled  uint64
	DualApplied uint64

	// LastError is the failure of the most recently finished reshard
	// ("" when it committed, or none ran).
	LastError string
}

// ReshardStatus returns a point-in-time view of the reshard engine.
func (s *ShardedTree) ReshardStatus() ReshardStatus {
	g := s.cur.Load()
	st := ReshardStatus{
		Phase:      "idle",
		Generation: g.gen,
		Shards:     len(g.shards),
		Policy:     g.part.policy().String(),
	}
	if lr := s.lr.Load(); lr != nil {
		st.InFlight = true
		st.Phase = reshardPhaseNames[lr.phase.Load()]
		st.Shards = len(lr.target.shards)
		st.Policy = lr.target.part.policy().String()
		st.Scanned = lr.scanned.Load()
		st.Backfilled = lr.backfilled.Load()
		st.DualApplied = lr.applied.Load()
	}
	s.statusMu.Lock()
	if s.lastReshardErr != nil {
		st.LastError = s.lastReshardErr.Error()
	}
	s.statusMu.Unlock()
	return st
}

// CancelReshard asks an in-flight live reshard to abort; it reports
// whether one was in flight.  The abort is acknowledged at the
// engine's next cancellation check, never after the commit point.
func (s *ShardedTree) CancelReshard() bool {
	if lr := s.lr.Load(); lr != nil {
		lr.cancel()
		return true
	}
	return false
}

// Reshard rebuilds the index under spec — a new shard count, partition
// policy and/or speed bands — while concurrent reads and writes keep
// being served, and blocks until the reshard commits or fails.  See
// the package comment at the top of this file for the protocol.
func (s *ShardedTree) Reshard(spec ReshardSpec) error {
	spec, derived, err := s.normalizeSpec(spec)
	if err != nil {
		return err
	}
	if !s.reshardMu.TryLock() {
		return ErrReshardInFlight
	}
	defer s.reshardMu.Unlock()
	if s.closing.Load() {
		return errIndexClosed
	}
	err = s.runLiveReshard(spec, derived)
	s.statusMu.Lock()
	s.lastReshardErr = err
	s.statusMu.Unlock()
	return err
}

// StartReshard is Reshard running in the background: it returns once
// the reshard is admitted (ErrReshardInFlight when one already runs),
// and the outcome is reported by ReshardStatus.LastError.
func (s *ShardedTree) StartReshard(spec ReshardSpec) error {
	spec, derived, err := s.normalizeSpec(spec)
	if err != nil {
		return err
	}
	if !s.reshardMu.TryLock() {
		return ErrReshardInFlight
	}
	if s.closing.Load() {
		s.reshardMu.Unlock()
		return errIndexClosed
	}
	s.statusMu.Lock()
	s.lastReshardErr = nil
	s.statusMu.Unlock()
	go func() {
		defer s.reshardMu.Unlock()
		err := s.runLiveReshard(spec, derived)
		s.statusMu.Lock()
		s.lastReshardErr = err
		s.statusMu.Unlock()
	}()
	return nil
}

// normalizeSpec fills defaults and validates; derived reports that the
// speed bands were taken from the drift window (and are therefore
// recorded as auto-tuned).
func (s *ShardedTree) normalizeSpec(spec ReshardSpec) (ReshardSpec, bool, error) {
	g := s.cur.Load()
	if spec.Shards == 0 {
		spec.Shards = len(g.shards)
	}
	if spec.Shards < 1 {
		return spec, false, fmt.Errorf("rexptree: invalid reshard shard count %d", spec.Shards)
	}
	switch spec.Policy {
	case PartitionHash, PartitionSpeed:
	default:
		return spec, false, fmt.Errorf("rexptree: unknown partition policy %d", int(spec.Policy))
	}
	if spec.Policy == PartitionHash && len(spec.SpeedBands) > 0 {
		return spec, false, fmt.Errorf("rexptree: speed bands given for hash partitioning")
	}
	spec.SpeedBands = append([]float64(nil), spec.SpeedBands...)
	derived := false
	if spec.Policy == PartitionSpeed && len(spec.SpeedBands) == 0 && spec.Shards >= 2 {
		if s.speedWin != nil && s.speedWin.Full() {
			spec.SpeedBands = manifest.QuantileBands(s.speedWin.Snapshot(), spec.Shards)
			derived = true
		}
	}
	if len(spec.SpeedBands) > 0 {
		if len(spec.SpeedBands) != spec.Shards-1 {
			return spec, false, fmt.Errorf("rexptree: %d speed bands for %d shards, want %d", len(spec.SpeedBands), spec.Shards, spec.Shards-1)
		}
		for i, b := range spec.SpeedBands {
			// Equal neighbors are allowed (quantiles of a degenerate
			// distribution coincide); descending or negative are not.
			if !(b >= 0) || (i > 0 && b < spec.SpeedBands[i-1]) {
				return spec, false, fmt.Errorf("rexptree: speed bands must be non-negative and non-descending, got %v", spec.SpeedBands)
			}
		}
	}
	return spec, derived, nil
}

// scanRec is one snapshotted record (internal stored form).
type scanRec struct {
	id uint32
	mp geom.MovingPoint
}

// reshardBackfillChunk is how many snapshot records each backfill
// batch loads into the target; each chunk holds the re-route lock
// once, so writes interleave with the backfill at chunk granularity.
const reshardBackfillChunk = 512

// hook runs the test crash hook for a phase boundary, if any.
func (s *ShardedTree) hook(point string) error {
	if s.testReshardHook != nil {
		return s.testReshardHook(point)
	}
	return nil
}

// runLiveReshard is the engine; the caller holds reshardMu for the
// whole run.  derived marks spec.SpeedBands as self-tuned.
func (s *ShardedTree) runLiveReshard(spec ReshardSpec, derived bool) error {
	cur := s.cur.Load()
	newGen := cur.gen + 1

	// Sweep leftovers of interrupted reshards out of the way first, so
	// the target generation opens onto fresh files.
	if s.basePath != "" {
		if _, err := reshard.CleanStale(s.basePath, cur.gen); err != nil {
			return fmt.Errorf("rexptree: live reshard: %w", err)
		}
	}

	// Build the empty target generation: next file generation, same
	// durability and per-shard options as a reopen would derive, so
	// every mirrored mutation and backfilled record is WAL-durable
	// before the commit rename.
	trees, err := openGeneration(s.opts, spec.Shards, newGen)
	if err != nil {
		return fmt.Errorf("rexptree: live reshard: %w", err)
	}
	target := &generation{shards: trees, sums: make([]shardSummary, spec.Shards), gen: newGen}
	switch spec.Policy {
	case PartitionSpeed:
		sp := newSpeedPartitioner(spec.Shards, s.dims, s.opts.TuneAfter, spec.SpeedBands,
			func(b []float64) { s.setSpeedGauges(target, b) })
		sp.tuned = derived
		target.part = sp
	default:
		target.part = hashPartitioner{n: spec.Shards}
	}
	for i := range target.sums {
		ss := &target.sums[i]
		ss.mu.Lock()
		s.retightenLocked(target, i)
		ss.mu.Unlock()
	}

	lr := newLiveReshard(spec, target)

	// Publish: from here every mutation dual-applies into the target.
	s.rerouteMu.Lock()
	if s.closing.Load() {
		s.rerouteMu.Unlock()
		return s.abortCrash(lr, errReshardCanceled)
	}
	s.lr.Store(lr)
	s.rerouteMu.Unlock()

	// Phase 1: scan a snapshot of every current shard over the
	// lock-free read path, at the highest clock any shard has applied.
	// Records the dual-apply stream touches after this point supersede
	// their snapshot versions and are excluded from the backfill.
	lr.phase.Store(reshardPhaseScan)
	snapClock := 0.0
	for _, t := range cur.shards {
		if c := t.clockNow(); c > snapClock {
			snapClock = c
		}
	}
	var recs []scanRec
	for _, t := range cur.shards {
		if err := lr.aborted(); err != nil {
			return s.abortClean(lr, err)
		}
		err := t.exportRecords(func(oid uint32, mp geom.MovingPoint) error {
			recs = append(recs, scanRec{oid, mp})
			return nil
		})
		if err != nil {
			return s.abortClean(lr, fmt.Errorf("rexptree: live reshard scan: %w", err))
		}
	}
	lr.scanned.Store(uint64(len(recs)))
	if err := s.hook("scan"); err != nil {
		return s.abortCrash(lr, err)
	}

	// Phase 2: backfill the snapshot into the target in chunks, each
	// under the exclusive re-route lock so it cannot interleave with a
	// dual-applied mutation.  Touched ids are skipped — their snapshot
	// version is stale — and records already expired at the snapshot
	// clock are dropped, like the offline reshard does.
	lr.phase.Store(reshardPhaseBackfill)
	expireAware := len(cur.shards) > 0 && cur.shards[0].t.Config().ExpireAware
	for start := 0; start < len(recs); start += reshardBackfillChunk {
		end := start + reshardBackfillChunk
		if end > len(recs) {
			end = len(recs)
		}
		s.rerouteMu.Lock()
		if err := lr.aborted(); err != nil {
			s.rerouteMu.Unlock()
			return s.abortClean(lr, err)
		}
		if s.closing.Load() {
			s.rerouteMu.Unlock()
			return s.abortClean(lr, errReshardCanceled)
		}
		batch := make([]Report, 0, end-start)
		for _, r := range recs[start:end] {
			if lr.isTouched(r.id) {
				continue
			}
			if expireAware && r.mp.TExp < snapClock {
				continue
			}
			// A stored record's reference time is 0, so re-reporting it
			// with Time 0 stores the identical record in the target.
			batch = append(batch, Report{ID: r.id, Point: Point{
				Pos:     Vec(r.mp.Pos),
				Vel:     Vec(r.mp.Vel),
				Time:    0,
				Expires: r.mp.TExp,
			}})
		}
		if len(batch) > 0 {
			if err := s.applyBatch(target, batch, snapClock, nil, false); err != nil {
				s.rerouteMu.Unlock()
				return s.abortClean(lr, fmt.Errorf("rexptree: live reshard backfill: %w", err))
			}
			lr.backfilled.Add(uint64(len(batch)))
			s.m.ReshardBackfilled.Add(uint64(len(batch)))
		}
		s.rerouteMu.Unlock()
	}
	if err := s.hook("dual-apply"); err != nil {
		return s.abortCrash(lr, err)
	}

	// Phase 3: cutover.  With the exclusive re-route lock held, no
	// mutation is in flight: the generations must now agree object for
	// object, and the atomic manifest rewrite is the commit point.
	lr.phase.Store(reshardPhaseCutover)
	s.rerouteMu.Lock()
	stallStart := time.Now()
	abortLocked := func(crash bool, cause error) error {
		s.rerouteMu.Unlock()
		if crash {
			return s.abortCrash(lr, cause)
		}
		return s.abortClean(lr, cause)
	}
	if err := lr.aborted(); err != nil {
		return abortLocked(false, err)
	}
	if s.closing.Load() {
		return abortLocked(false, errReshardCanceled)
	}
	if err := s.hook("verify"); err != nil {
		return abortLocked(true, err)
	}
	if err := verifyGenerations(cur, target, expireAware); err != nil {
		return abortLocked(false, err)
	}
	if err := s.hook("pre-rename"); err != nil {
		return abortLocked(true, err)
	}
	if s.manifestPath != "" {
		if err := s.writeManifestFile(target); err != nil {
			return abortLocked(false, fmt.Errorf("rexptree: live reshard commit: %w", err))
		}
	}
	// Committed: swap the generation pointer; readers migrate on their
	// next pin, writers on their next lock acquisition.  The
	// replication sink moves to the new shards in the same critical
	// section, so emission is gapless and never doubled: until here
	// only the old generation emitted (dual-apply kept the target
	// sink-free), from here only the new one does.
	if s.replSink != nil {
		for _, t := range target.shards {
			t.mu.Lock()
			t.replSink = s.replSink
			t.mu.Unlock()
		}
	}
	s.lr.Store(nil)
	s.cur.Store(target)
	s.m.ReshardCutoverStall.Observe(time.Since(stallStart))
	s.rerouteMu.Unlock()

	if err := s.hook("post-rename"); err != nil {
		// Simulated crash after the commit point: the new generation
		// stays live (and durable); the old one is dropped without
		// touching its files, which the next reshard sweeps.
		for _, t := range cur.shards {
			t.Abandon()
		}
		return err
	}

	// Retire the old generation once the last in-flight reader leaves
	// it.  Its files are about to be removed, so there is nothing to
	// checkpoint.
	for cur.refs.Load() != 0 {
		time.Sleep(100 * time.Microsecond)
	}
	for _, t := range cur.shards {
		t.Abandon()
	}
	if s.basePath != "" {
		for i := range cur.shards {
			// Best effort: leftovers are swept by the next reshard.
			RemoveIndex(manifest.ShardPath(s.basePath, cur.gen, i))
		}
		reshard.CleanStale(s.basePath, newGen)
	}
	s.m.ReshardRuns.Inc()
	return nil
}

// abortClean unwinds a reshard before its commit point: the dual-apply
// window is closed, the target trees are dropped and their files
// removed.  The index keeps serving from the untouched current
// generation.
func (s *ShardedTree) abortClean(lr *liveReshard, cause error) error {
	s.unpublish(lr)
	for _, t := range lr.target.shards {
		t.Abandon()
	}
	if s.basePath != "" {
		for i := range lr.target.shards {
			RemoveIndex(manifest.ShardPath(s.basePath, lr.target.gen, i))
		}
	}
	return cause
}

// abortCrash unwinds like abortClean but leaves the target's files on
// disk, simulating a process kill at a phase boundary: recovery (the
// next open or reshard) must cope with the leftovers.
func (s *ShardedTree) abortCrash(lr *liveReshard, cause error) error {
	s.unpublish(lr)
	for _, t := range lr.target.shards {
		t.Abandon()
	}
	return cause
}

// unpublish closes the dual-apply window.  Taking the exclusive
// re-route lock waits out every mutation that may still hold the
// reshard pointer, so the target trees are quiescent afterwards.
func (s *ShardedTree) unpublish(lr *liveReshard) {
	s.rerouteMu.Lock()
	if s.lr.Load() == lr {
		s.lr.Store(nil)
	}
	s.rerouteMu.Unlock()
}

// verifyGenerations proves the target holds exactly the records of the
// current generation.  The caller holds the exclusive re-route lock,
// so both sides are quiescent.  Under expiry-aware semantics, records
// expired at the verification clock are ignored on both sides: the
// generations may legitimately disagree on how many expired records
// they have lazily purged.
func verifyGenerations(cur, target *generation, expireAware bool) error {
	clock := 0.0
	for _, t := range cur.shards {
		if c := t.clockNow(); c > clock {
			clock = c
		}
	}
	for _, t := range target.shards {
		if c := t.clockNow(); c > clock {
			clock = c
		}
	}
	want := make(map[uint32]geom.MovingPoint)
	for _, t := range cur.shards {
		t.objectsInto(want)
	}
	got := make(map[uint32]geom.MovingPoint)
	for _, t := range target.shards {
		t.objectsInto(got)
	}
	live := func(mp geom.MovingPoint) bool {
		return !expireAware || mp.TExp >= clock
	}
	for id, mp := range want {
		if !live(mp) {
			continue
		}
		tmp, ok := got[id]
		if !ok {
			return fmt.Errorf("rexptree: live reshard verify: object %d missing from target generation", id)
		}
		if tmp != mp {
			return fmt.Errorf("rexptree: live reshard verify: object %d differs between generations", id)
		}
	}
	for id, mp := range got {
		if !live(mp) {
			continue
		}
		if _, ok := want[id]; !ok {
			return fmt.Errorf("rexptree: live reshard verify: object %d only in target generation", id)
		}
	}
	return nil
}

// shutdownReshard stops the drift detector and waits out any in-flight
// reshard (canceling it; one already past its commit point completes).
// Caller holds closeMu.
func (s *ShardedTree) shutdownReshard() {
	s.closing.Store(true)
	if s.autoStop != nil {
		close(s.autoStop)
		<-s.autoDone
		s.autoStop = nil
	}
	if lr := s.lr.Load(); lr != nil {
		lr.cancel()
	}
	// The acquisition is the barrier: it returns only once the engine
	// goroutine released reshardMu.
	s.reshardMu.Lock()
	s.reshardMu.Unlock() //nolint:staticcheck // empty critical section intended
}

// autoReshardLoop is the drift detector; see AutoReshardOptions.
func (s *ShardedTree) autoReshardLoop(opts AutoReshardOptions) {
	defer close(s.autoDone)
	interval := opts.Interval
	if interval <= 0 {
		interval = 5 * time.Second
	}
	cooldown := opts.MinInterval
	if cooldown <= 0 {
		cooldown = time.Minute
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	var last time.Time
	var prevRerouted, prevUpdates uint64
	for {
		select {
		case <-s.autoStop:
			return
		case <-tick.C:
		}
		g := s.pin()
		k := len(g.shards)
		total, maxLen := 0, 0
		for _, t := range g.shards {
			n := t.Len()
			total += n
			if n > maxLen {
				maxLen = n
			}
		}
		g.unpin()

		snap := s.m.Snapshot()
		updates := snap.Ops[obs.OpUpdate].Count + snap.BatchedUpdates
		skew := 0.0
		if total > 0 {
			skew = float64(maxLen*k) / float64(total)
		}
		churn := 0.0
		if du := updates - prevUpdates; du > 0 {
			churn = float64(snap.Rerouted-prevRerouted) / float64(du)
		}
		prevUpdates, prevRerouted = updates, snap.Rerouted
		s.m.ReshardSkew.Set(skew)
		s.m.ReshardChurn.Set(churn)

		trigger := (opts.SkewThreshold > 0 && skew > opts.SkewThreshold) ||
			(opts.ChurnThreshold > 0 && churn > opts.ChurnThreshold)
		if !trigger || k < 2 || !s.speedWin.Full() {
			continue
		}
		if !last.IsZero() && time.Since(last) < cooldown {
			continue
		}
		// normalizeSpec derives fresh quantile bands from the window.
		if err := s.StartReshard(ReshardSpec{Shards: k, Policy: PartitionSpeed}); err == nil {
			last = time.Now()
		}
	}
}
