package rexptree

import (
	"fmt"
	"os"

	"rexptree/internal/core"
	"rexptree/internal/geom"
	"rexptree/internal/storage"
)

// BulkObject is one object of an initial population for OpenBulk.
type BulkObject struct {
	ID    uint32
	Point Point
}

// OpenBulk creates a tree pre-loaded with an initial object population
// using sort-tile-recursive packing adapted to moving points.  It is
// far faster than inserting the population one report at a time and
// produces a well-filled tree.  now is the load time; every report is
// interpreted as of its own Point.Time, as in Update.
//
// Options.Path, if set, must not name an existing file.
func OpenBulk(opts Options, objs []BulkObject, now float64) (*Tree, error) {
	var store storage.Store
	if opts.Path != "" {
		if _, err := os.Stat(opts.Path); err == nil {
			return nil, fmt.Errorf("rexptree: OpenBulk: %s already exists", opts.Path)
		}
		fs, err := storage.CreateFileStore(opts.Path)
		if err != nil {
			return nil, err
		}
		store = fs
	} else {
		store = storage.NewMemStore()
	}
	dims := opts.Dims
	items := make([]core.BulkItem, len(objs))
	for i, o := range objs {
		items[i] = core.BulkItem{OID: o.ID, Point: toInternal(o.Point, dims)}
	}
	m := newMetrics(opts)
	cfg := opts.internal()
	cfg.Metrics = m
	t, err := core.BulkLoad(cfg, store, items, now)
	if err != nil {
		store.Close()
		return nil, err
	}
	tr := &Tree{
		t:       t,
		store:   store,
		dims:    dims,
		objects: make(map[uint32]geom.MovingPoint, len(objs)),
		m:       m,
	}
	for _, it := range items {
		tr.objects[it.OID] = t.Stored(it.Point)
	}
	return tr, nil
}
