package rexptree

import (
	"fmt"
	"os"

	"rexptree/internal/core"
	"rexptree/internal/hull"
	"rexptree/internal/manifest"
	"rexptree/internal/storage"
	"rexptree/internal/wal"
)

// ReplSink observes every mutation a tree applies, in apply order.  A
// sharded index calls the sink under the owning shard's exclusive lock
// immediately after the mutation succeeds (and, in WAL mode, before
// the commit fsync), so the sink sees exactly the applied history: a
// failed mutation is never emitted, and two mutations of one object
// arrive in their apply order.  internal/repl's Feed implements this
// to build the leader's replication log.
//
// Implementations must be fast and must not call back into the index.
type ReplSink interface {
	ReplUpdate(u wal.Update)
	ReplDelete(d wal.Delete)
}

// StoredOptions reads the layout-affecting configuration recorded in a
// shard page file's metadata (dimensions, bounding-rectangle kind,
// expiration flags) and returns Options that open the file faithfully,
// with every non-layout field at its DefaultOptions value.  A follower
// uses it to open a replica streamed from a leader whose tree
// configuration it was never told.
func StoredOptions(pagePath string) (Options, error) {
	fs, err := storage.OpenFileStoreReadOnly(pagePath)
	if err != nil {
		return Options{}, err
	}
	defer fs.Close()
	cfg, err := core.MetaConfig(fs)
	if err != nil {
		return Options{}, err
	}
	opts := DefaultOptions()
	opts.Dims = cfg.Dims
	opts.ExpireAware = cfg.ExpireAware
	opts.StoreBRExpiration = cfg.StoreBRExp
	// Expiration-aware heuristics follow the expire-aware layout flag:
	// that pairing is how both stock configurations are built.
	opts.HeuristicsUseExpiration = cfg.ExpireAware
	switch cfg.BRKind {
	case hull.KindStatic:
		opts.Bounding = Static
	case hull.KindUpdateMinimum:
		opts.Bounding = UpdateMinimum
	case hull.KindNearOptimal:
		opts.Bounding = NearOptimal
	case hull.KindOptimal:
		opts.Bounding = Optimal
	default:
		opts.Bounding = Conservative
	}
	return opts, nil
}

// replNoteUpdate forwards an applied update to the sink, if any.
// Called under mu after the apply succeeded.
func (tr *Tree) replNoteUpdate(id uint32, p Point, now float64) {
	if tr.replSink == nil {
		return
	}
	u := wal.Update{ID: id, Now: now, Time: p.Time, Expires: p.Expires}
	copy(u.Pos[:], p.Pos[:])
	copy(u.Vel[:], p.Vel[:])
	tr.replSink.ReplUpdate(u)
}

// replNoteDelete forwards an applied deletion to the sink, if any.
func (tr *Tree) replNoteDelete(id uint32, now float64) {
	if tr.replSink == nil {
		return
	}
	tr.replSink.ReplDelete(wal.Delete{ID: id, Now: now})
}

// SetReplSink attaches sink to every current shard (nil detaches).  A
// live-reshard cutover carries the sink over to the new generation, so
// emission never pauses across a reshard; during the dual-apply window
// only the current generation emits, so no mutation is ever emitted
// twice.
func (s *ShardedTree) SetReplSink(sink ReplSink) {
	s.rerouteMu.Lock()
	defer s.rerouteMu.Unlock()
	s.replSink = sink
	for _, t := range s.cur.Load().shards {
		t.mu.Lock()
		t.replSink = sink
		t.mu.Unlock()
	}
}

// beginStream freezes this tree's on-disk image for a backup stream:
// it defers checkpoints (ckptHold), so the page file stays the exact
// image of the last checkpoint while it is copied and the WAL only
// grows — the retained-segment guarantee.  Taking the exclusive lock
// once is the barrier against a checkpoint already in flight; the WAL
// flush makes every applied record visible in the file.  It returns
// the WAL length to stream and the snapshot epoch to validate against;
// callers must endStream exactly once.
func (tr *Tree) beginStream() (walLen int64, epoch uint64, err error) {
	tr.ckptHold.Add(1)
	tr.lock()
	defer tr.mu.Unlock()
	if tr.closed || tr.wal == nil || tr.walPoison != nil {
		tr.ckptHold.Add(-1)
		if tr.walPoison != nil {
			return 0, 0, tr.walPoison
		}
		return 0, 0, fmt.Errorf("rexptree: tree is not streamable (closed or not durable)")
	}
	if err := tr.wal.Flush(); err != nil {
		tr.ckptHold.Add(-1)
		return 0, 0, err
	}
	return tr.wal.Size(), tr.snapEpoch.Load(), nil
}

// endStream releases the checkpoint hold taken by beginStream.
func (tr *Tree) endStream() { tr.ckptHold.Add(-1) }

// Backup is a consistent, pinned view of a sharded index for a hot
// backup: the generation pin keeps the shard files on disk (a reshard
// retiring this generation waits for the pin), and each shard is
// streamed under its own checkpoint hold.  Close releases the pin;
// always call it.
type Backup struct {
	s    *ShardedTree
	g    *generation
	done bool
}

// BeginBackup pins the current generation for streaming.  It requires
// a file-backed, durable index: only the WAL + checkpoint machinery
// makes the on-disk files a crash-consistent image.
func (s *ShardedTree) BeginBackup() (*Backup, error) {
	if s.basePath == "" || s.durability == DurabilityNone {
		return nil, fmt.Errorf("rexptree: hot backup requires a file-backed index with a durability policy")
	}
	return &Backup{s: s, g: s.pin()}, nil
}

// Shards returns the pinned generation's shard count.
func (b *Backup) Shards() int { return len(b.g.shards) }

// Generation returns the pinned generation's shard-file generation
// number, as recorded in the manifest.
func (b *Backup) Generation() int { return b.g.gen }

// ManifestBytes returns the manifest file's raw contents, after
// checking the pinned generation is still current — a reshard that cut
// over since BeginBackup has rewritten the manifest for a different
// shard set, so the stream must abort rather than mix the two.
func (b *Backup) ManifestBytes() ([]byte, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return os.ReadFile(manifest.Path(b.s.basePath))
}

// Validate reports whether the pinned generation is still the current
// one.  Stream producers call it before declaring the stream complete;
// a failure must abort the stream loudly.
func (b *Backup) Validate() error {
	if b.s.cur.Load() != b.g {
		return fmt.Errorf("rexptree: backup invalidated: the index resharded while streaming")
	}
	return nil
}

// Close releases the generation pin.  Idempotent.
func (b *Backup) Close() {
	if !b.done {
		b.done = true
		b.g.unpin()
	}
}

// BackupShard is one shard frozen for streaming: read PageBytes bytes
// of PagePath and WALBytes bytes of WALPath (both prefixes are stable
// while the shard's checkpoint hold is in place), call Validate, then
// End.  Concurrent zero-fills of free pages may tear inside the page
// prefix; recovery never reads free pages, so the image stays
// crash-consistent.
type BackupShard struct {
	PagePath  string
	WALPath   string
	PageBytes int64
	WALBytes  int64

	tr    *Tree
	epoch uint64
}

// BeginShard freezes shard i for streaming.  Callers must End the
// returned shard exactly once.
func (b *Backup) BeginShard(i int) (*BackupShard, error) {
	if i < 0 || i >= len(b.g.shards) {
		return nil, fmt.Errorf("rexptree: backup shard %d out of range [0,%d)", i, len(b.g.shards))
	}
	tr := b.g.shards[i]
	walLen, epoch, err := tr.beginStream()
	if err != nil {
		return nil, err
	}
	base := manifest.ShardPath(b.s.basePath, b.g.gen, i)
	fi, err := os.Stat(base)
	if err != nil {
		tr.endStream()
		return nil, err
	}
	return &BackupShard{
		PagePath:  base,
		WALPath:   WALPath(base),
		PageBytes: fi.Size(),
		WALBytes:  walLen,
		tr:        tr,
		epoch:     epoch,
	}, nil
}

// Validate reports whether the streamed prefixes are still the frozen
// image: a checkpoint or WAL rewind since BeginShard (a manual
// checkpoint, a close, a failed mutation's rollback) bumps the shard's
// snapshot epoch and invalidates the bytes already sent.
func (bs *BackupShard) Validate() error {
	if bs.tr.snapEpoch.Load() != bs.epoch {
		return fmt.Errorf("rexptree: backup shard invalidated: the shard checkpointed or rewound its WAL while streaming")
	}
	return nil
}

// End releases the shard's checkpoint hold.
func (bs *BackupShard) End() { bs.tr.endStream() }
